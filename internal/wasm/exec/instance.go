package exec

import (
	"fmt"
	"math"

	"repro/internal/wasm"
)

// PageSize is the WebAssembly linear-memory page size.
const PageSize = 65536

// HostFunc is a native implementation of an imported function. Arguments
// arrive in declaration order as raw 64-bit values (i32 zero-extended,
// floats as IEEE bits); results are returned the same way.
type HostFunc func(vm *VM, args []uint64) ([]uint64, error)

// HostModule is a named collection of host functions, keyed by import name.
type HostModule map[string]HostFunc

// Resolver maps import module names to host modules.
type Resolver map[string]HostModule

// funcDef is a resolved entry of the function index space.
type funcDef struct {
	typ   wasm.FuncType
	host  HostFunc   // non-nil for imported functions
	code  *wasm.Code // non-nil for local functions
	meta  wasm.ControlMeta
	name  string // debug name: "module.name" for imports, name-section otherwise
	index uint32
}

// Instance is an instantiated module: resolved functions, initialized
// memory, table and globals.
type Instance struct {
	module  *wasm.Module
	funcs   []funcDef
	globals []uint64
	table   []int32 // function indices; -1 marks an uninitialized element
	mem     []byte
	memMax  uint32 // in pages; 0 means unlimited

	// MaxCallDepth bounds recursion (default 250, matching EOSVM).
	MaxCallDepth int
}

// Instantiate links a module against the resolver and runs data/element
// segment initialization. The start function, if any, is NOT run
// automatically (EOSIO contracts do not use it); call Invoke explicitly.
func Instantiate(m *wasm.Module, r Resolver) (*Instance, error) {
	inst := &Instance{module: m, MaxCallDepth: 250}

	for _, imp := range m.Imports {
		switch imp.Kind {
		case wasm.ExternalFunc:
			hm, ok := r[imp.Module]
			if !ok {
				return nil, fmt.Errorf("exec: unresolved import module %q", imp.Module)
			}
			fn, ok := hm[imp.Name]
			if !ok {
				return nil, fmt.Errorf("exec: unresolved import %q.%q", imp.Module, imp.Name)
			}
			if int(imp.TypeIndex) >= len(m.Types) {
				return nil, fmt.Errorf("exec: import %q.%q type index out of range", imp.Module, imp.Name)
			}
			inst.funcs = append(inst.funcs, funcDef{
				typ:   m.Types[imp.TypeIndex],
				host:  fn,
				name:  imp.Module + "." + imp.Name,
				index: uint32(len(inst.funcs)),
			})
		case wasm.ExternalGlobal:
			return nil, fmt.Errorf("exec: global imports are not supported (%q.%q)", imp.Module, imp.Name)
		case wasm.ExternalMemory:
			mem := imp.Memory
			inst.mem = make([]byte, int(mem.Limits.Min)*PageSize)
			if mem.Limits.HasMax {
				inst.memMax = mem.Limits.Max
			}
		case wasm.ExternalTable:
			inst.table = newTable(imp.Table.Limits.Min)
		}
	}

	imported := len(inst.funcs)
	for i, ti := range m.Funcs {
		if int(ti) >= len(m.Types) {
			return nil, fmt.Errorf("exec: func %d type index out of range", i)
		}
		code := &m.Code[i]
		meta, err := wasm.AnalyzeControl(code.Body)
		if err != nil {
			return nil, fmt.Errorf("exec: func %d: %w", imported+i, err)
		}
		idx := uint32(imported + i)
		inst.funcs = append(inst.funcs, funcDef{
			typ:   m.Types[ti],
			code:  code,
			meta:  meta,
			name:  m.FuncNames[idx],
			index: idx,
		})
	}

	for _, t := range m.Tables {
		inst.table = newTable(t.Limits.Min)
	}
	for _, mm := range m.Memories {
		inst.mem = make([]byte, int(mm.Limits.Min)*PageSize)
		if mm.Limits.HasMax {
			inst.memMax = mm.Limits.Max
		}
	}

	for _, g := range m.Globals {
		v, err := inst.evalConst(g.Init)
		if err != nil {
			return nil, fmt.Errorf("exec: global init: %w", err)
		}
		inst.globals = append(inst.globals, v)
	}

	for i, el := range m.Elems {
		off, err := inst.evalConst(el.Offset)
		if err != nil {
			return nil, fmt.Errorf("exec: elem %d offset: %w", i, err)
		}
		base := int(uint32(off))
		if base+len(el.Funcs) > len(inst.table) {
			return nil, fmt.Errorf("exec: elem %d writes outside table (base %d, %d funcs, table %d)", i, base, len(el.Funcs), len(inst.table))
		}
		for j, fi := range el.Funcs {
			if int(fi) >= len(inst.funcs) {
				return nil, fmt.Errorf("exec: elem %d entry %d: function %d out of range", i, j, fi)
			}
			inst.table[base+j] = int32(fi)
		}
	}

	for i, seg := range m.Data {
		off, err := inst.evalConst(seg.Offset)
		if err != nil {
			return nil, fmt.Errorf("exec: data %d offset: %w", i, err)
		}
		base := int(uint32(off))
		if base+len(seg.Data) > len(inst.mem) {
			return nil, fmt.Errorf("exec: data %d writes outside memory (base %d, %d bytes, memory %d)", i, base, len(seg.Data), len(inst.mem))
		}
		copy(inst.mem[base:], seg.Data)
	}

	return inst, nil
}

func newTable(n uint32) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

func (inst *Instance) evalConst(expr []wasm.Instr) (uint64, error) {
	if len(expr) != 1 {
		return 0, fmt.Errorf("unsupported constant expression of length %d", len(expr))
	}
	in := expr[0]
	switch in.Op {
	case wasm.OpI32Const:
		return uint64(uint32(in.I32())), nil
	case wasm.OpI64Const:
		return in.Imm, nil
	case wasm.OpF32Const, wasm.OpF64Const:
		return in.Imm, nil
	case wasm.OpGlobalGet:
		if int(in.A) >= len(inst.globals) {
			return 0, fmt.Errorf("global.get %d out of range in constant expression", in.A)
		}
		return inst.globals[in.A], nil
	default:
		return 0, fmt.Errorf("unsupported opcode %s in constant expression", in.Op.Name())
	}
}

// Module returns the underlying module.
func (inst *Instance) Module() *wasm.Module { return inst.module }

// Memory returns the linear memory backing store. Host functions may read
// and write it directly; bounds are the caller's responsibility.
func (inst *Instance) Memory() []byte { return inst.mem }

// MemSize returns the memory size in bytes.
func (inst *Instance) MemSize() int { return len(inst.mem) }

// ReadMemory copies n bytes at addr, trapping on out-of-bounds.
func (inst *Instance) ReadMemory(addr, n uint32) ([]byte, error) {
	end := uint64(addr) + uint64(n)
	if end > uint64(len(inst.mem)) {
		return nil, &Trap{Kind: TrapMemoryOutOfBounds}
	}
	out := make([]byte, n)
	copy(out, inst.mem[addr:end])
	return out, nil
}

// WriteMemory copies p into memory at addr, trapping on out-of-bounds.
func (inst *Instance) WriteMemory(addr uint32, p []byte) error {
	end := uint64(addr) + uint64(len(p))
	if end > uint64(len(inst.mem)) {
		return &Trap{Kind: TrapMemoryOutOfBounds}
	}
	copy(inst.mem[addr:end], p)
	return nil
}

// TableGet returns the function index stored at table element i, or false
// when i is out of range or the element is uninitialized.
func (inst *Instance) TableGet(i uint32) (uint32, bool) {
	if int(i) >= len(inst.table) || inst.table[i] < 0 {
		return 0, false
	}
	return uint32(inst.table[i]), true
}

// GlobalValue returns the current value of global idx.
func (inst *Instance) GlobalValue(idx uint32) (uint64, bool) {
	if int(idx) >= len(inst.globals) {
		return 0, false
	}
	return inst.globals[idx], true
}

// FuncName returns a printable name for the function index.
func (inst *Instance) FuncName(idx uint32) string {
	if int(idx) < len(inst.funcs) && inst.funcs[idx].name != "" {
		return inst.funcs[idx].name
	}
	return fmt.Sprintf("func[%d]", idx)
}

// grow implements memory.grow, returning the previous size in pages or -1.
func (inst *Instance) grow(pages uint32) int32 {
	cur := uint32(len(inst.mem) / PageSize)
	if pages == 0 {
		return int32(cur)
	}
	next := uint64(cur) + uint64(pages)
	if inst.memMax != 0 && next > uint64(inst.memMax) {
		return -1
	}
	if next > 65536 { // 4GiB hard cap
		return -1
	}
	inst.mem = append(inst.mem, make([]byte, int(pages)*PageSize)...)
	return int32(cur)
}

// f32 helpers shared by the VM.
func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
