package exec

import (
	"fmt"
	"sync"

	"repro/internal/wasm"
)

// This file implements the decode pass of the fast execution core: a
// one-time lowering of function bodies into a flat, pre-resolved
// instruction stream (irInstr). Immediates are decoded, branch targets and
// unwind depths are pre-computed, common instruction pairs are fused into
// superinstructions, and the EndOf/ElseOf map lookups of the tree-walker
// are gone. The dispatch loop lives in fastvm.go.
//
// Compilation is conservative: any body the static pre-pass cannot prove
// stack-consistent (the reference interpreter would reach its panic-to-trap
// path) is rejected, and that function transparently falls back to the
// reference tree-walker at call time. Observable behaviour is therefore
// always exactly the reference interpreter's.

// irOp enumerates the decoded instruction forms.
type irOp uint8

const (
	irInvalid irOp = iota
	// irTick charges fuel for a control bookkeeping instruction
	// (block/loop/end/else/nop) that needs no work at runtime beyond the
	// reference interpreter's per-instruction fuel decrement.
	irTick
	irUnreachable
	irBr      // a=target ir-pc, b=unwind height, x=values kept
	irBrIf    // branch when popped value is non-zero
	irBrIfZ   // branch when popped value is zero (lowered if)
	irBrTable // a=index into fn.tables; last entry is the default
	irReturn  // x=result count
	irCall    // a=function index
	irCallInd // a=canonical type id, b=ir-pc (for traps)
	irDrop
	irSelect
	irLocalGet  // a=local index
	irLocalSet  // a=local index
	irLocalTee  // a=local index
	irGlobalGet // a=global index
	irGlobalSet // a=global index
	irConst     // imm=value (i32 already masked+zero-extended)
	irMemSize
	irMemGrow
	irLoad    // x=opcode, a=byte width, b=offset
	irStore   // x=opcode, a=byte width, b=offset
	irNumeric // x=opcode; delegates to applyNumeric (floats, conversions, ...)

	// Inline hot integer ops (operands/results identical to applyNumeric).
	irI32Add
	irI32Sub
	irI32Mul
	irI32And
	irI32Or
	irI32Xor
	irI32Shl
	irI32ShrS
	irI32ShrU
	irI32Eq
	irI32Ne
	irI32LtS
	irI32LtU
	irI32GtS
	irI32GtU
	irI32Eqz
	irI64Add
	irI64Sub
	irI64Mul
	irI64And
	irI64Or
	irI64Xor
	irI64Shl
	irI64ShrS
	irI64ShrU
	irI64Eq
	irI64Ne
	irI64LtS
	irI64LtU
	irI64GtS
	irI64GtU
	irI64Eqz

	// Superinstructions (fused pairs/triples; cost carries the fuel of all
	// original instructions and is charged up front).
	irGetGetAddI32 // a,b=local indices: push locals[a]+locals[b] (i32)
	irGetGetAddI64 // a,b=local indices: push locals[a]+locals[b] (i64)
	irConstAddI32  // imm=addend: top = i32(top + imm)
	irConstAddI64  // imm=addend: top = top + imm
	irConstStore   // imm=value, x=store opcode, a=byte width, b=offset
)

// irInstr is one decoded instruction. 24 bytes, flat slice, no pointers on
// the hot path (br_table payloads live in irFunc.tables).
type irInstr struct {
	op   irOp
	x    uint8  // sub-opcode / kept-value count / result count
	cost uint16 // fuel units: number of original instructions represented
	a    uint32
	b    uint32
	imm  uint64
}

// irTarget is one pre-resolved br_table destination.
type irTarget struct {
	pc     uint32 // ir-pc to jump to
	unwind uint32 // stack height to trim to (after keeping keep values)
	keep   uint8  // 1 when the target frame has a result, else 0
}

// irFunc is a compiled function body.
type irFunc struct {
	code     []irInstr
	tables   [][]irTarget
	maxStack int
	nLocals  int // params + declared locals
	nResults int
	// src maps each ir-pc back to the source pc (index into the original
	// body) it was lowered from. It lives in a parallel slice — not in the
	// 24-byte irInstr — so the hot dispatch loop's cache footprint is
	// unchanged; only observers (the abstract interpreter, witnesses in
	// original trace coordinates) read it.
	src []uint32
}

// irProgram is the decoded form of one module: per-function compiled
// bodies (nil entries fall back to the tree-walker) and the canonical
// type id of every function in the index space, so call_indirect type
// checks are a single integer comparison.
type irProgram struct {
	funcs     []*irFunc // indexed by function-space index
	funcCanon []uint32  // canonical type id per function-space index
	typeCanon []uint32  // canonical type id per module type index
}

// irCache memoizes compiled programs by module identity. Modules are
// immutable once decoded, and compilation is a pure function of the body
// bytes, so the cache can never change observable behaviour — it only
// removes duplicated decode work across the many short-lived VMs the
// chain layer creates.
//
//wasai:localcache decoded IR is a pure function of the immutable module, keyed by pointer identity
var irCache sync.Map // *wasm.Module -> *irProgram

// programFor returns the decoded program for m, compiling it on first use.
func programFor(m *wasm.Module) *irProgram {
	if p, ok := irCache.Load(m); ok {
		return p.(*irProgram)
	}
	p := compileModule(m)
	actual, _ := irCache.LoadOrStore(m, p)
	return actual.(*irProgram)
}

// compileModule lowers every local function body, recording nil for any
// body the conservative static pass rejects.
func compileModule(m *wasm.Module) *irProgram {
	p := &irProgram{
		funcs:     make([]*irFunc, m.NumFuncs()),
		funcCanon: make([]uint32, m.NumFuncs()),
		typeCanon: make([]uint32, len(m.Types)),
	}
	// Intern signatures: structurally equal types share a canonical id.
	for i, t := range m.Types {
		id := uint32(i)
		for j := 0; j < i; j++ {
			if m.Types[j].Equal(t) {
				id = uint32(j)
				break
			}
		}
		p.typeCanon[i] = id
	}
	imported := 0
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternalFunc {
			continue
		}
		if int(imp.TypeIndex) < len(p.typeCanon) {
			p.funcCanon[imported] = p.typeCanon[imp.TypeIndex]
		}
		imported++
	}
	for i, ti := range m.Funcs {
		fi := imported + i
		if fi >= len(p.funcCanon) || int(ti) >= len(p.typeCanon) {
			continue
		}
		p.funcCanon[fi] = p.typeCanon[ti]
		ft := m.Types[ti]
		fn, err := compileFunc(m, &m.Code[i], ft)
		if err != nil {
			continue // fall back to the tree-walker for this function
		}
		p.funcs[fi] = fn
	}
	return p
}

// maxIRStack bounds the pre-allocated operand stack of a compiled body;
// larger bodies (which cannot come out of the generators or real EOSIO
// contracts) fall back to the tree-walker rather than over-allocating.
const maxIRStack = 1 << 16

// cFrame is one compile-time control frame.
type cFrame struct {
	isLoop    bool
	isIf      bool
	elseSeen  bool
	hasResult bool
	entryH    int   // operand-stack height at frame entry
	loopPC    int   // ir-pc of the loop body start (branch target for loops)
	patches   []int // ir-pc of forward branches targeting this frame's end
	elsePatch int   // ir-pc of the irBrIfZ awaiting the else label, or -1
	// elseJumpPC is the ir-pc of the then-arm's jump over the else-arm
	// (-1 when the then-arm ended dead or there is no else), and
	// elseJumpH the stack height it carries to the end.
	elseJumpPC int
	elseJumpH  int
	tpatches   []tablePatch
}

// tablePatch is a forward br_table entry awaiting this frame's end label.
type tablePatch struct{ table, entry int }

type compiler struct {
	m         *wasm.Module
	out       []irInstr
	srcs      []uint32 // source pc per emitted instruction, parallel to out
	curSrc    uint32   // source pc of the instruction being lowered
	tables    [][]irTarget
	frames    []cFrame
	nLocals   int
	fnResults uint8
	height    int
	maxH      int
	// barrier is the first out index the fusion peephole may not reach
	// past: it is advanced whenever a label can bind at the current
	// position, so superinstructions never straddle a branch target.
	barrier int
	// dead tracks statically unreachable code (after br/return/
	// unreachable); deadDepth counts control nesting opened inside it.
	dead      bool
	deadDepth int
}

func (c *compiler) emit(in irInstr) {
	c.out = append(c.out, in)
	c.srcs = append(c.srcs, c.curSrc)
}

func (c *compiler) setBarrier() { c.barrier = len(c.out) }

// need checks the operand stack holds at least n values; the reference
// interpreter would panic (→ host-error trap) otherwise, so we reject.
func (c *compiler) need(n int) error {
	if c.height < n {
		return fmt.Errorf("stack underflow: need %d, have %d", n, c.height)
	}
	return nil
}

func (c *compiler) adjust(pops, pushes int) {
	c.height += pushes - pops
	if c.height > c.maxH {
		c.maxH = c.height
	}
}

// compileFunc lowers one body. Any structural or stack inconsistency the
// reference interpreter would surface as a runtime panic-trap makes the
// whole function fall back instead.
func compileFunc(m *wasm.Module, code *wasm.Code, ft wasm.FuncType) (fn *irFunc, err error) {
	defer func() {
		if r := recover(); r != nil {
			fn, err = nil, fmt.Errorf("ir: compile panic: %v", r)
		}
	}()
	if len(ft.Results) > 255 {
		return nil, fmt.Errorf("ir: too many results")
	}
	c := &compiler{
		m:         m,
		nLocals:   len(ft.Params) + int(code.NumLocals()),
		fnResults: uint8(len(ft.Results)),
	}
	for pc := range code.Body {
		c.curSrc = uint32(pc)
		if cerr := c.instr(&code.Body[pc]); cerr != nil {
			return nil, fmt.Errorf("ir: pc %d: %w", pc, cerr)
		}
	}
	if len(c.frames) != 0 {
		return nil, fmt.Errorf("ir: %d unclosed control frames", len(c.frames))
	}
	// The implicit return after the function-terminating end: the
	// reference loop just falls off the body, charging nothing extra.
	c.emit(irInstr{op: irReturn, x: uint8(len(ft.Results)), cost: 0})
	if c.maxH > maxIRStack {
		return nil, fmt.Errorf("ir: operand stack bound %d too large", c.maxH)
	}
	return &irFunc{
		code:     c.out,
		tables:   c.tables,
		maxStack: c.maxH,
		nLocals:  len(ft.Params) + int(code.NumLocals()),
		nResults: len(ft.Results),
		src:      c.srcs,
	}, nil
}

// instr lowers one source instruction. The compiler maintains the
// invariant that for every reachable ir-pc there is exactly one possible
// operand-stack height; any body violating it is rejected.
func (c *compiler) instr(in *wasm.Instr) error {
	if c.dead {
		// Statically unreachable code is tracked structurally but emits
		// nothing: the reference interpreter can never execute it.
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			c.deadDepth++
		case wasm.OpElse:
			if c.deadDepth == 0 {
				return c.elseDead()
			}
		case wasm.OpEnd:
			if c.deadDepth > 0 {
				c.deadDepth--
				return nil
			}
			return c.endFrame(true)
		}
		return nil
	}

	switch in.Op {
	case wasm.OpUnreachable:
		c.emit(irInstr{op: irUnreachable, cost: 1})
		c.dead = true
	case wasm.OpNop:
		c.emit(irInstr{op: irTick, cost: 1})
	case wasm.OpBlock:
		c.emit(irInstr{op: irTick, cost: 1})
		c.frames = append(c.frames, cFrame{
			entryH: c.height, hasResult: in.A != wasm.BlockTypeEmpty, elsePatch: -1, elseJumpPC: -1,
		})
	case wasm.OpLoop:
		c.emit(irInstr{op: irTick, cost: 1})
		c.setBarrier() // the back-branch label binds here, at the body start
		c.frames = append(c.frames, cFrame{
			isLoop: true, entryH: c.height, loopPC: len(c.out),
			hasResult: in.A != wasm.BlockTypeEmpty, elsePatch: -1, elseJumpPC: -1,
		})
	case wasm.OpIf:
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		c.emit(irInstr{op: irBrIfZ, cost: 1, b: uint32(c.height)})
		c.frames = append(c.frames, cFrame{
			isIf: true, entryH: c.height, hasResult: in.A != wasm.BlockTypeEmpty,
			elsePatch: len(c.out) - 1, elseJumpPC: -1,
		})
	case wasm.OpElse:
		return c.elseLive()
	case wasm.OpEnd:
		return c.endFrame(false)
	case wasm.OpBr:
		if err := c.branch(irBr, int(in.A)); err != nil {
			return err
		}
		c.dead = true
	case wasm.OpBrIf:
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		if err := c.branch(irBrIf, int(in.A)); err != nil {
			return err
		}
	case wasm.OpBrTable:
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		depths := make([]int, 0, len(in.Table)+1)
		for _, t := range in.Table {
			depths = append(depths, int(t))
		}
		depths = append(depths, int(in.A))
		ti := len(c.tables)
		entries := make([]irTarget, len(depths))
		c.tables = append(c.tables, entries)
		for i, d := range depths {
			if d >= len(c.frames) {
				return fmt.Errorf("br_table depth %d exceeds nesting %d", d, len(c.frames))
			}
			fr := &c.frames[len(c.frames)-1-d]
			if fr.isLoop {
				if err := c.need(fr.entryH); err != nil {
					return err
				}
				entries[i] = irTarget{pc: uint32(fr.loopPC), unwind: uint32(fr.entryH)}
				continue
			}
			keep := 0
			if fr.hasResult {
				keep = 1
			}
			if err := c.need(fr.entryH + keep); err != nil {
				return err
			}
			entries[i] = irTarget{unwind: uint32(fr.entryH), keep: uint8(keep)}
			fr.tpatches = append(fr.tpatches, tablePatch{table: ti, entry: i})
		}
		c.emit(irInstr{op: irBrTable, cost: 1, a: uint32(ti)})
		c.dead = true
	case wasm.OpReturn:
		// The reference tolerates a short stack here (takeResults returns
		// nil), so no static height requirement.
		c.emit(irInstr{op: irReturn, cost: 1, x: c.nResultsByte()})
		c.dead = true
	case wasm.OpCall:
		ft, err := c.m.FuncTypeAt(in.A)
		if err != nil {
			return err
		}
		if err := c.need(len(ft.Params)); err != nil {
			return err
		}
		c.adjust(len(ft.Params), len(ft.Results))
		c.emit(irInstr{op: irCall, cost: 1, a: in.A})
	case wasm.OpCallIndirect:
		if int(in.A) >= len(c.m.Types) {
			return fmt.Errorf("call_indirect type %d out of range", in.A)
		}
		ft := c.m.Types[in.A]
		if err := c.need(1 + len(ft.Params)); err != nil {
			return err
		}
		c.adjust(1+len(ft.Params), len(ft.Results))
		c.emit(irInstr{op: irCallInd, cost: 1, a: uint32(in.A)})
	case wasm.OpDrop:
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		c.emit(irInstr{op: irDrop, cost: 1})
	case wasm.OpSelect:
		if err := c.need(3); err != nil {
			return err
		}
		c.adjust(3, 1)
		c.emit(irInstr{op: irSelect, cost: 1})
	case wasm.OpLocalGet:
		if int(in.A) >= c.nLocals {
			return fmt.Errorf("local %d out of range", in.A)
		}
		c.adjust(0, 1)
		c.emit(irInstr{op: irLocalGet, cost: 1, a: in.A})
	case wasm.OpLocalSet:
		if int(in.A) >= c.nLocals {
			return fmt.Errorf("local %d out of range", in.A)
		}
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		c.emit(irInstr{op: irLocalSet, cost: 1, a: in.A})
	case wasm.OpLocalTee:
		if int(in.A) >= c.nLocals {
			return fmt.Errorf("local %d out of range", in.A)
		}
		if err := c.need(1); err != nil {
			return err
		}
		c.emit(irInstr{op: irLocalTee, cost: 1, a: in.A})
	case wasm.OpGlobalGet:
		if int(in.A) >= len(c.m.Globals) {
			return fmt.Errorf("global %d out of range", in.A)
		}
		c.adjust(0, 1)
		c.emit(irInstr{op: irGlobalGet, cost: 1, a: in.A})
	case wasm.OpGlobalSet:
		if int(in.A) >= len(c.m.Globals) {
			return fmt.Errorf("global %d out of range", in.A)
		}
		if err := c.need(1); err != nil {
			return err
		}
		c.height--
		c.emit(irInstr{op: irGlobalSet, cost: 1, a: in.A})
	case wasm.OpI32Const:
		c.adjust(0, 1)
		c.emit(irInstr{op: irConst, cost: 1, imm: uint64(uint32(in.I32()))})
	case wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		c.adjust(0, 1)
		c.emit(irInstr{op: irConst, cost: 1, imm: in.Imm})
	case wasm.OpMemorySize:
		c.adjust(0, 1)
		c.emit(irInstr{op: irMemSize, cost: 1})
	case wasm.OpMemoryGrow:
		if err := c.need(1); err != nil {
			return err
		}
		c.adjust(1, 1)
		c.emit(irInstr{op: irMemGrow, cost: 1})
	default:
		return c.lowerDataOp(in)
	}
	return nil
}

// nResultsByte returns the function result count for irReturn encoding.
func (c *compiler) nResultsByte() uint8 {
	return c.fnResults
}

// branch emits a br/br_if to relative depth d (target pre-resolved for
// loops, forward-patched for blocks/ifs).
func (c *compiler) branch(op irOp, d int) error {
	if d >= len(c.frames) {
		// The reference interpreter panics (→ host-error trap) on a branch
		// past the outermost frame; reject so the fallback reproduces it.
		return fmt.Errorf("branch depth %d exceeds nesting %d", d, len(c.frames))
	}
	fr := &c.frames[len(c.frames)-1-d]
	if fr.isLoop {
		if err := c.need(fr.entryH); err != nil {
			return err
		}
		c.emit(irInstr{op: op, cost: 1, a: uint32(fr.loopPC), b: uint32(fr.entryH)})
		return nil
	}
	keep := 0
	if fr.hasResult {
		keep = 1
	}
	if err := c.need(fr.entryH + keep); err != nil {
		return err
	}
	c.emit(irInstr{op: op, cost: 1, b: uint32(fr.entryH), x: uint8(keep)})
	fr.patches = append(fr.patches, len(c.out)-1)
	return nil
}

// elseLive handles an else reached with a live then-arm fall-through.
func (c *compiler) elseLive() error {
	fr, err := c.ifTop()
	if err != nil {
		return err
	}
	// The then-arm jumps over the else-arm to the end opcode (which the
	// reference executes on this path, charging its fuel).
	c.emit(irInstr{op: irBr, cost: 1, b: uint32(c.height)})
	fr.elseJumpPC = len(c.out) - 1
	fr.elseJumpH = c.height
	c.out[fr.elsePatch].a = uint32(len(c.out))
	fr.elsePatch = -1
	c.setBarrier()
	c.height = fr.entryH
	return nil
}

// elseDead handles an else whose then-arm ended in dead code: the
// else-arm is still reachable through the if's conditional branch.
func (c *compiler) elseDead() error {
	fr, err := c.ifTop()
	if err != nil {
		return err
	}
	c.out[fr.elsePatch].a = uint32(len(c.out))
	fr.elsePatch = -1
	c.setBarrier()
	c.dead = false
	c.height = fr.entryH
	return nil
}

func (c *compiler) ifTop() (*cFrame, error) {
	if len(c.frames) == 0 {
		return nil, fmt.Errorf("else outside if")
	}
	fr := &c.frames[len(c.frames)-1]
	if !fr.isIf || fr.elseSeen {
		return nil, fmt.Errorf("else without matching if")
	}
	fr.elseSeen = true
	return fr, nil
}

// endFrame closes the innermost control frame, merging every live in-edge
// (fall-through, then-arm jump, skipped-if path, forward branches) into a
// single static stack height.
func (c *compiler) endFrame(deadFall bool) error {
	if len(c.frames) == 0 {
		// Function-terminating end: executes (and charges fuel) only when
		// reached by falling through.
		if !deadFall {
			c.emit(irInstr{op: irTick, cost: 1})
		}
		return nil
	}
	fr := c.frames[len(c.frames)-1]
	c.frames = c.frames[:len(c.frames)-1]
	if fr.isLoop {
		// Loop labels point backwards; the end has no incoming branches.
		if deadFall {
			c.dead = true
			return nil
		}
		c.emit(irInstr{op: irTick, cost: 1})
		return nil
	}
	keep := 0
	if fr.hasResult {
		keep = 1
	}
	// Collect the stack height of every live path into (or past) this end.
	const none = -1
	merged := none
	add := func(h int) error {
		if merged == none {
			merged = h
			return nil
		}
		if merged != h {
			return fmt.Errorf("inconsistent stack heights at merge: %d vs %d", merged, h)
		}
		return nil
	}
	if !deadFall {
		if err := add(c.height); err != nil {
			return err
		}
	}
	if fr.elseJumpPC >= 0 {
		if err := add(fr.elseJumpH); err != nil {
			return err
		}
	}
	if fr.elsePatch >= 0 {
		// if without else: the false path skips the end entirely.
		if err := add(fr.entryH); err != nil {
			return err
		}
	}
	if len(fr.patches) > 0 || len(fr.tpatches) > 0 {
		if err := add(fr.entryH + keep); err != nil {
			return err
		}
	}
	if merged == none {
		c.dead = true
		return nil
	}
	// The end opcode itself executes (and charges fuel) only on the
	// fall-through and then-arm-jump paths; branches land just past it.
	if !deadFall || fr.elseJumpPC >= 0 {
		if fr.elseJumpPC >= 0 {
			c.out[fr.elseJumpPC].a = uint32(len(c.out))
		}
		c.emit(irInstr{op: irTick, cost: 1})
	}
	label := uint32(len(c.out))
	if fr.elsePatch >= 0 {
		c.out[fr.elsePatch].a = label
	}
	for _, p := range fr.patches {
		c.out[p].a = label
	}
	for _, tp := range fr.tpatches {
		c.tables[tp.table][tp.entry].pc = label
	}
	c.setBarrier()
	c.dead = false
	c.height = merged
	return nil
}

// inlineOps maps the hot integer opcodes onto dedicated dispatch cases;
// everything else rides through applyNumeric unchanged.
var inlineOps = map[wasm.Opcode]irOp{
	wasm.OpI32Add: irI32Add, wasm.OpI32Sub: irI32Sub, wasm.OpI32Mul: irI32Mul,
	wasm.OpI32And: irI32And, wasm.OpI32Or: irI32Or, wasm.OpI32Xor: irI32Xor,
	wasm.OpI32Shl: irI32Shl, wasm.OpI32ShrS: irI32ShrS, wasm.OpI32ShrU: irI32ShrU,
	wasm.OpI32Eq: irI32Eq, wasm.OpI32Ne: irI32Ne,
	wasm.OpI32LtS: irI32LtS, wasm.OpI32LtU: irI32LtU,
	wasm.OpI32GtS: irI32GtS, wasm.OpI32GtU: irI32GtU,
	wasm.OpI32Eqz: irI32Eqz,
	wasm.OpI64Add: irI64Add, wasm.OpI64Sub: irI64Sub, wasm.OpI64Mul: irI64Mul,
	wasm.OpI64And: irI64And, wasm.OpI64Or: irI64Or, wasm.OpI64Xor: irI64Xor,
	wasm.OpI64Shl: irI64Shl, wasm.OpI64ShrS: irI64ShrS, wasm.OpI64ShrU: irI64ShrU,
	wasm.OpI64Eq: irI64Eq, wasm.OpI64Ne: irI64Ne,
	wasm.OpI64LtS: irI64LtS, wasm.OpI64LtU: irI64LtU,
	wasm.OpI64GtS: irI64GtS, wasm.OpI64GtU: irI64GtU,
	wasm.OpI64Eqz: irI64Eqz,
}

// numericEffect returns the stack effect of a pure numeric opcode handled
// by applyNumeric, or ok=false for opcodes the reference would reject.
func numericEffect(op wasm.Opcode) (pops, pushes int, ok bool) {
	switch {
	case op == wasm.OpI32Eqz || op == wasm.OpI64Eqz:
		return 1, 1, true
	case op >= wasm.OpI32Eq && op <= wasm.OpF64Ge:
		return 2, 1, true
	case op >= wasm.OpI32Clz && op <= wasm.OpI32Popcnt:
		return 1, 1, true
	case op >= wasm.OpI32Add && op <= wasm.OpI32Rotr:
		return 2, 1, true
	case op >= wasm.OpI64Clz && op <= wasm.OpI64Popcnt:
		return 1, 1, true
	case op >= wasm.OpI64Add && op <= wasm.OpI64Rotr:
		return 2, 1, true
	case op >= wasm.OpF32Abs && op <= wasm.OpF32Sqrt:
		return 1, 1, true
	case op >= wasm.OpF32Add && op <= wasm.OpF32Copysign:
		return 2, 1, true
	case op >= wasm.OpF64Abs && op <= wasm.OpF64Sqrt:
		return 1, 1, true
	case op >= wasm.OpF64Add && op <= wasm.OpF64Copysign:
		return 2, 1, true
	case op >= wasm.OpI32WrapI64 && op <= wasm.OpF64ReinterpretI64:
		return 1, 1, true
	default:
		return 0, 0, false
	}
}

// lowerDataOp handles loads, stores and numeric opcodes, applying the
// superinstruction peephole where a label cannot intervene.
func (c *compiler) lowerDataOp(in *wasm.Instr) error {
	prev := func(back int) *irInstr {
		if len(c.out)-back < c.barrier {
			return nil
		}
		return &c.out[len(c.out)-back]
	}
	switch {
	case in.Op.IsLoad():
		if err := c.need(1); err != nil {
			return err
		}
		c.adjust(1, 1)
		c.emit(irInstr{op: irLoad, cost: 1, x: uint8(in.Op), a: uint32(in.Op.MemBytes()), b: in.B})
	case in.Op.IsStore():
		if err := c.need(2); err != nil {
			return err
		}
		c.adjust(2, 0)
		if p := prev(1); p != nil && p.op == irConst {
			// const+store fusion: the value is an immediate.
			*p = irInstr{op: irConstStore, cost: p.cost + 1, x: uint8(in.Op), a: uint32(in.Op.MemBytes()), b: in.B, imm: p.imm}
			return nil
		}
		c.emit(irInstr{op: irStore, cost: 1, x: uint8(in.Op), a: uint32(in.Op.MemBytes()), b: in.B})
	default:
		pops, pushes, ok := numericEffect(in.Op)
		if !ok {
			return fmt.Errorf("unsupported opcode %s", in.Op.Name())
		}
		if err := c.need(pops); err != nil {
			return err
		}
		c.adjust(pops, pushes)
		if in.Op == wasm.OpI32Add || in.Op == wasm.OpI64Add {
			if p := prev(1); p != nil && p.op == irConst {
				fused := irConstAddI32
				if in.Op == wasm.OpI64Add {
					fused = irConstAddI64
				}
				*p = irInstr{op: fused, cost: p.cost + 1, imm: p.imm}
				return nil
			}
			if p1, p2 := prev(1), prev(2); p2 != nil && p1.op == irLocalGet && p2.op == irLocalGet {
				fused := irGetGetAddI32
				if in.Op == wasm.OpI64Add {
					fused = irGetGetAddI64
				}
				cost := p1.cost + p2.cost + 1
				fi := irInstr{op: fused, cost: cost, a: p2.a, b: p1.a}
				c.out = c.out[:len(c.out)-2]
				c.srcs = c.srcs[:len(c.srcs)-2]
				c.emit(fi)
				return nil
			}
		}
		if op, ok := inlineOps[in.Op]; ok {
			c.emit(irInstr{op: op, cost: 1})
			return nil
		}
		c.emit(irInstr{op: irNumeric, cost: 1, x: uint8(in.Op)})
	}
	return nil
}
