// Package exec implements a stack-based WebAssembly interpreter with the
// execution profile of EOSVM: a single linear memory, funcref tables with
// call_indirect dispatch, host-function imports, deterministic traps, and
// fuel metering so runaway contracts (e.g. the obfuscator's unsatisfiable
// recursion) terminate deterministically.
package exec

import (
	"errors"
	"fmt"
)

// TrapKind enumerates the deterministic trap causes.
type TrapKind int

// Trap kinds.
const (
	TrapUnreachable TrapKind = iota + 1
	TrapMemoryOutOfBounds
	TrapDivideByZero
	TrapIntegerOverflow
	TrapInvalidConversion
	TrapUndefinedElement
	TrapIndirectCallTypeMismatch
	TrapStackExhausted
	TrapFuelExhausted
	TrapHostError
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapUnreachable:
		return "unreachable"
	case TrapMemoryOutOfBounds:
		return "out of bounds memory access"
	case TrapDivideByZero:
		return "integer divide by zero"
	case TrapIntegerOverflow:
		return "integer overflow"
	case TrapInvalidConversion:
		return "invalid conversion to integer"
	case TrapUndefinedElement:
		return "undefined table element"
	case TrapIndirectCallTypeMismatch:
		return "indirect call type mismatch"
	case TrapStackExhausted:
		return "call stack exhausted"
	case TrapFuelExhausted:
		return "fuel exhausted"
	case TrapHostError:
		return "host error"
	default:
		return fmt.Sprintf("trap(%d)", int(k))
	}
}

// Trap is a runtime fault. Traps abort the current invocation and, at the
// chain layer, revert the enclosing transaction.
type Trap struct {
	Kind TrapKind
	// FuncIndex and PC locate the faulting instruction when known.
	FuncIndex uint32
	PC        int
	// Wrapped carries the host error for TrapHostError.
	Wrapped error
}

// Error implements error.
func (t *Trap) Error() string {
	if t.Wrapped != nil {
		return fmt.Sprintf("wasm trap: %s: %v (func %d pc %d)", t.Kind, t.Wrapped, t.FuncIndex, t.PC)
	}
	return fmt.Sprintf("wasm trap: %s (func %d pc %d)", t.Kind, t.FuncIndex, t.PC)
}

// Unwrap exposes the wrapped host error.
func (t *Trap) Unwrap() error { return t.Wrapped }

// AsTrap extracts a *Trap from err when present.
func AsTrap(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// IsTrap reports whether err is (or wraps) a trap of the given kind.
func IsTrap(err error, kind TrapKind) bool {
	t, ok := AsTrap(err)
	return ok && t.Kind == kind
}
