package exec

import (
	"testing"

	"repro/internal/contractgen"
)

// semOutcome is the full observable behaviour of one engine on one
// generated self-checking module.
type semOutcome struct {
	result  []uint64
	trap    TrapKind
	fuel    int64
	memHash uint64
	notes   []uint64
}

func runSemEngine(t *testing.T, p *contractgen.SemProgram, fast bool) semOutcome {
	t.Helper()
	var notes []uint64
	resolver := Resolver{"sem": HostModule{
		"note": func(vm *VM, args []uint64) ([]uint64, error) {
			notes = append(notes, args[0])
			return nil, nil
		},
	}}
	inst, err := Instantiate(p.Module, resolver)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	var vm *VM
	if fast {
		vm = NewFastVM(inst)
	} else {
		vm = NewVM(inst)
	}
	res, err := vm.Invoke("run")
	out := semOutcome{result: res, memHash: memHash(inst.mem), notes: notes}
	if err != nil {
		tr, ok := AsTrap(err)
		if !ok {
			t.Fatalf("non-trap error: %v", err)
		}
		out.trap = tr.Kind
		return out
	}
	out.fuel = DefaultFuel - vm.Fuel()
	return out
}

// TestGenerativeDifferentialGate is the fast-engine acceptance gate: 1024
// seeded self-checking programs must agree between the fast and reference
// engines on traps, return values, final memory hashes, host-call
// sequences — and, on success, fuel consumed. The programs self-check, so
// a pass also means both engines computed every folded constant correctly.
func TestGenerativeDifferentialGate(t *testing.T) {
	const seeds = 1024
	compiled := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := contractgen.GenerateSemantics(seed)
		ref := runSemEngine(t, p, false)
		fast := runSemEngine(t, p, true)

		if ref.trap != fast.trap {
			t.Fatalf("seed %d: trap divergence: reference %v, fast %v", seed, ref.trap, fast.trap)
		}
		if ref.trap == 0 {
			if len(ref.result) != 1 || len(fast.result) != 1 || ref.result[0] != fast.result[0] {
				t.Fatalf("seed %d: result divergence: %v vs %v", seed, ref.result, fast.result)
			}
			if ref.result[0] != p.Return {
				t.Fatalf("seed %d: both engines returned %#x, generator predicted %#x", seed, ref.result[0], p.Return)
			}
			if ref.fuel != fast.fuel {
				t.Fatalf("seed %d: fuel divergence: reference %d, fast %d", seed, ref.fuel, fast.fuel)
			}
		}
		if ref.memHash != fast.memHash {
			t.Fatalf("seed %d: final memory divergence", seed)
		}
		if len(ref.notes) != len(fast.notes) {
			t.Fatalf("seed %d: host-call sequence length divergence: %d vs %d", seed, len(ref.notes), len(fast.notes))
		}
		for i := range ref.notes {
			if ref.notes[i] != fast.notes[i] {
				t.Fatalf("seed %d: host-call divergence at %d: %#x vs %#x", seed, i, ref.notes[i], fast.notes[i])
			}
		}

		// The gate is vacuous if the IR compiler rejects everything.
		prog := programFor(p.Module)
		if idx, ok := p.Module.ExportedFunc("run"); ok && prog.funcs[idx] != nil {
			compiled++
		}
	}
	if compiled < seeds*9/10 {
		t.Fatalf("only %d/%d generated programs compiled to IR; gate is not exercising the fast engine", compiled, seeds)
	}
}
