package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/wasm"
)

// DefaultFuel is the default instruction budget per top-level invocation.
const DefaultFuel = 20_000_000

// VM executes functions of a single Instance. A VM is not safe for
// concurrent use; the chain layer creates one VM per applied action.
type VM struct {
	inst  *Instance
	fuel  int64
	depth int

	// prog, when non-nil, selects the decoded-IR fast engine (fastvm.go);
	// functions its conservative compiler rejected stay nil in prog.funcs
	// and run on the tree-walker below.
	prog    *irProgram
	fastObs FastObserver

	// Context carries host-defined state (the chain's apply context) that
	// host functions retrieve via vm.Context.
	Context any
}

// NewVM returns a VM over inst with the default fuel budget.
func NewVM(inst *Instance) *VM { return &VM{inst: inst, fuel: DefaultFuel} }

// SetFuel replaces the remaining instruction budget.
func (vm *VM) SetFuel(fuel int64) { vm.fuel = fuel }

// Fuel returns the remaining instruction budget.
func (vm *VM) Fuel() int64 { return vm.fuel }

// Instance returns the instance this VM executes.
func (vm *VM) Instance() *Instance { return vm.inst }

// Invoke calls the exported function with the given name.
func (vm *VM) Invoke(name string, args ...uint64) ([]uint64, error) {
	idx, ok := vm.inst.module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("exec: no exported function %q", name)
	}
	return vm.InvokeIndex(idx, args...)
}

// InvokeIndex calls the function at the given function-space index.
func (vm *VM) InvokeIndex(idx uint32, args ...uint64) ([]uint64, error) {
	if int(idx) >= len(vm.inst.funcs) {
		return nil, fmt.Errorf("exec: function index %d out of range", idx)
	}
	f := &vm.inst.funcs[idx]
	if len(args) != len(f.typ.Params) {
		return nil, fmt.Errorf("exec: %s wants %d args, got %d", vm.inst.FuncName(idx), len(f.typ.Params), len(args))
	}
	return vm.call(f, args)
}

func (vm *VM) call(f *funcDef, args []uint64) ([]uint64, error) {
	vm.depth++
	defer func() { vm.depth-- }()
	if vm.depth > vm.inst.MaxCallDepth {
		return nil, &Trap{Kind: TrapStackExhausted, FuncIndex: f.index}
	}
	if f.host != nil {
		res, err := f.host(vm, args)
		if err != nil {
			if _, ok := AsTrap(err); ok {
				return nil, err
			}
			return nil, &Trap{Kind: TrapHostError, FuncIndex: f.index, Wrapped: err}
		}
		return res, nil
	}
	if fn := vm.fastCompiled(f); fn != nil {
		return vm.fastExec(f, fn, args)
	}
	return vm.exec(f, args)
}

// ctrlFrame is one entry of the structured-control stack.
type ctrlFrame struct {
	startPC   int
	endPC     int
	stackH    int
	isLoop    bool
	hasResult bool
}

func (vm *VM) exec(f *funcDef, args []uint64) (results []uint64, err error) {
	locals := make([]uint64, len(f.typ.Params)+int(f.code.NumLocals()))
	copy(locals, args)

	var (
		stack []uint64
		ctrl  []ctrlFrame
	)
	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	trap := func(kind TrapKind, pc int) error {
		return &Trap{Kind: kind, FuncIndex: f.index, PC: pc}
	}

	body := f.code.Body
	mem := func() []byte { return vm.inst.mem }

	// branchTo unwinds to the frame at relative depth d per Wasm label
	// semantics and returns the next pc.
	branchTo := func(d int) int {
		target := ctrl[len(ctrl)-1-d]
		if target.isLoop {
			// Branch to a loop re-enters at its start; loop labels take no values.
			stack = stack[:target.stackH]
			ctrl = ctrl[:len(ctrl)-d] // keep the loop frame itself
			return target.startPC + 1
		}
		var result uint64
		if target.hasResult {
			result = stack[len(stack)-1]
		}
		stack = stack[:target.stackH]
		if target.hasResult {
			stack = append(stack, result)
		}
		ctrl = ctrl[:len(ctrl)-1-d]
		return target.endPC + 1
	}

	defer func() {
		if r := recover(); r != nil {
			// Index/slice panics indicate a malformed (unvalidated) body;
			// convert to a trap rather than crashing the process. An error
			// panic value keeps its chain (errors.Is/As through the trap).
			wrapped := fmt.Errorf("interpreter panic: %v", r)
			if e, ok := r.(error); ok {
				wrapped = fmt.Errorf("interpreter panic: %w", e)
			}
			results = nil
			err = &Trap{Kind: TrapHostError, FuncIndex: f.index, Wrapped: wrapped}
		}
	}()

	pc := 0
	for pc < len(body) {
		if vm.fuel--; vm.fuel < 0 {
			return nil, trap(TrapFuelExhausted, pc)
		}
		in := body[pc]
		switch in.Op {
		case wasm.OpUnreachable:
			return nil, trap(TrapUnreachable, pc)
		case wasm.OpNop:
		case wasm.OpBlock:
			ctrl = append(ctrl, ctrlFrame{
				startPC: pc, endPC: f.meta.EndOf[pc], stackH: len(stack),
				hasResult: in.A != wasm.BlockTypeEmpty,
			})
		case wasm.OpLoop:
			ctrl = append(ctrl, ctrlFrame{
				startPC: pc, endPC: f.meta.EndOf[pc], stackH: len(stack),
				isLoop: true, hasResult: in.A != wasm.BlockTypeEmpty,
			})
		case wasm.OpIf:
			cond := pop()
			endPC := f.meta.EndOf[pc]
			elsePC := f.meta.ElseOf[pc]
			if cond != 0 {
				ctrl = append(ctrl, ctrlFrame{startPC: pc, endPC: endPC, stackH: len(stack), hasResult: in.A != wasm.BlockTypeEmpty})
			} else if elsePC != endPC {
				ctrl = append(ctrl, ctrlFrame{startPC: pc, endPC: endPC, stackH: len(stack), hasResult: in.A != wasm.BlockTypeEmpty})
				pc = elsePC + 1
				continue
			} else {
				pc = endPC + 1
				continue
			}
		case wasm.OpElse:
			// Reached only by falling through the then-arm: skip to end.
			top := ctrl[len(ctrl)-1]
			pc = top.endPC // the end opcode pops the frame
			continue
		case wasm.OpEnd:
			if len(ctrl) > 0 {
				ctrl = ctrl[:len(ctrl)-1]
			}
		case wasm.OpBr:
			pc = branchTo(int(in.A))
			continue
		case wasm.OpBrIf:
			if pop() != 0 {
				pc = branchTo(int(in.A))
				continue
			}
		case wasm.OpBrTable:
			i := uint32(pop())
			d := in.A
			if int(i) < len(in.Table) {
				d = in.Table[i]
			}
			pc = branchTo(int(d))
			continue
		case wasm.OpReturn:
			return vm.takeResults(f, stack), nil
		case wasm.OpCall:
			callee := &vm.inst.funcs[in.A]
			res, err := vm.callFrom(callee, &stack)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpCallIndirect:
			ti := pop()
			if int(ti) >= len(vm.inst.table) {
				return nil, trap(TrapUndefinedElement, pc)
			}
			fi := vm.inst.table[ti]
			if fi < 0 {
				return nil, trap(TrapUndefinedElement, pc)
			}
			callee := &vm.inst.funcs[fi]
			want := vm.inst.module.Types[in.A]
			if !callee.typ.Equal(want) {
				return nil, trap(TrapIndirectCallTypeMismatch, pc)
			}
			res, err := vm.callFrom(callee, &stack)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case wasm.OpDrop:
			pop()
		case wasm.OpSelect:
			c, b, a := pop(), pop(), pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}
		case wasm.OpLocalGet:
			push(locals[in.A])
		case wasm.OpLocalSet:
			locals[in.A] = pop()
		case wasm.OpLocalTee:
			locals[in.A] = stack[len(stack)-1]
		case wasm.OpGlobalGet:
			push(vm.inst.globals[in.A])
		case wasm.OpGlobalSet:
			vm.inst.globals[in.A] = pop()

		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			if in.Op == wasm.OpI32Const {
				push(uint64(uint32(in.I32())))
			} else {
				push(in.Imm)
			}

		case wasm.OpMemorySize:
			push(uint64(uint32(len(mem()) / PageSize)))
		case wasm.OpMemoryGrow:
			pages := uint32(pop())
			push(uint64(uint32(vm.inst.grow(pages))))

		default:
			if in.Op.IsLoad() {
				addr := uint64(uint32(pop())) + uint64(in.B)
				n := in.Op.MemBytes()
				if addr+uint64(n) > uint64(len(mem())) {
					return nil, trap(TrapMemoryOutOfBounds, pc)
				}
				push(loadVal(in.Op, mem()[addr:addr+uint64(n)]))
			} else if in.Op.IsStore() {
				val := pop()
				addr := uint64(uint32(pop())) + uint64(in.B)
				n := in.Op.MemBytes()
				if addr+uint64(n) > uint64(len(mem())) {
					return nil, trap(TrapMemoryOutOfBounds, pc)
				}
				storeVal(in.Op, mem()[addr:addr+uint64(n)], val)
			} else {
				v, terr := applyNumeric(in.Op, &stack)
				if terr != 0 {
					return nil, trap(terr, pc)
				}
				_ = v
			}
		}
		pc++
	}
	return vm.takeResults(f, stack), nil
}

// callFrom pops the callee's arguments off the caller's stack and invokes it.
func (vm *VM) callFrom(callee *funcDef, stack *[]uint64) ([]uint64, error) {
	n := len(callee.typ.Params)
	s := *stack
	if len(s) < n {
		return nil, &Trap{Kind: TrapHostError, FuncIndex: callee.index, Wrapped: fmt.Errorf("stack underflow calling %s", callee.name)}
	}
	args := make([]uint64, n)
	copy(args, s[len(s)-n:])
	*stack = s[:len(s)-n]
	return vm.call(callee, args)
}

func (vm *VM) takeResults(f *funcDef, stack []uint64) []uint64 {
	n := len(f.typ.Results)
	if n == 0 || len(stack) < n {
		return nil
	}
	out := make([]uint64, n)
	copy(out, stack[len(stack)-n:])
	return out
}

func loadVal(op wasm.Opcode, p []byte) uint64 {
	switch op {
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return uint64(p[0])
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(p[0]))))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(p[0])))
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return uint64(binary.LittleEndian.Uint16(p))
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(binary.LittleEndian.Uint16(p)))))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(binary.LittleEndian.Uint16(p))))
	case wasm.OpI32Load, wasm.OpF32Load, wasm.OpI64Load32U:
		return uint64(binary.LittleEndian.Uint32(p))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(binary.LittleEndian.Uint32(p))))
	case wasm.OpI64Load, wasm.OpF64Load:
		return binary.LittleEndian.Uint64(p)
	default:
		return 0
	}
}

func storeVal(op wasm.Opcode, p []byte, val uint64) {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		p[0] = byte(val)
	case wasm.OpI32Store16, wasm.OpI64Store16:
		binary.LittleEndian.PutUint16(p, uint16(val))
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		binary.LittleEndian.PutUint32(p, uint32(val))
	case wasm.OpI64Store, wasm.OpF64Store:
		binary.LittleEndian.PutUint64(p, val)
	}
}

// applyNumeric executes a pure numeric/comparison/conversion opcode against
// the stack. It returns a trap kind of 0 on success.
func applyNumeric(op wasm.Opcode, stackp *[]uint64) (uint64, TrapKind) {
	stack := *stackp
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v uint64) { stack = append(stack, v) }
	pushBool := func(b bool) {
		if b {
			push(1)
		} else {
			push(0)
		}
	}
	defer func() { *stackp = stack }()

	switch op {
	// i32 comparisons
	case wasm.OpI32Eqz:
		pushBool(uint32(pop()) == 0)
	case wasm.OpI32Eq:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a == b)
	case wasm.OpI32Ne:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a != b)
	case wasm.OpI32LtS:
		b, a := int32(pop()), int32(pop())
		pushBool(a < b)
	case wasm.OpI32LtU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a < b)
	case wasm.OpI32GtS:
		b, a := int32(pop()), int32(pop())
		pushBool(a > b)
	case wasm.OpI32GtU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a > b)
	case wasm.OpI32LeS:
		b, a := int32(pop()), int32(pop())
		pushBool(a <= b)
	case wasm.OpI32LeU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a <= b)
	case wasm.OpI32GeS:
		b, a := int32(pop()), int32(pop())
		pushBool(a >= b)
	case wasm.OpI32GeU:
		b, a := uint32(pop()), uint32(pop())
		pushBool(a >= b)

	// i64 comparisons
	case wasm.OpI64Eqz:
		pushBool(pop() == 0)
	case wasm.OpI64Eq:
		b, a := pop(), pop()
		pushBool(a == b)
	case wasm.OpI64Ne:
		b, a := pop(), pop()
		pushBool(a != b)
	case wasm.OpI64LtS:
		b, a := int64(pop()), int64(pop())
		pushBool(a < b)
	case wasm.OpI64LtU:
		b, a := pop(), pop()
		pushBool(a < b)
	case wasm.OpI64GtS:
		b, a := int64(pop()), int64(pop())
		pushBool(a > b)
	case wasm.OpI64GtU:
		b, a := pop(), pop()
		pushBool(a > b)
	case wasm.OpI64LeS:
		b, a := int64(pop()), int64(pop())
		pushBool(a <= b)
	case wasm.OpI64LeU:
		b, a := pop(), pop()
		pushBool(a <= b)
	case wasm.OpI64GeS:
		b, a := int64(pop()), int64(pop())
		pushBool(a >= b)
	case wasm.OpI64GeU:
		b, a := pop(), pop()
		pushBool(a >= b)

	// f32/f64 comparisons
	case wasm.OpF32Eq, wasm.OpF32Ne, wasm.OpF32Lt, wasm.OpF32Gt, wasm.OpF32Le, wasm.OpF32Ge:
		b := math.Float32frombits(uint32(pop()))
		a := math.Float32frombits(uint32(pop()))
		pushBool(fcmp(op, float64(a), float64(b)))
	case wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Gt, wasm.OpF64Le, wasm.OpF64Ge:
		b := math.Float64frombits(pop())
		a := math.Float64frombits(pop())
		pushBool(fcmp(op, a, b))

	// i32 arithmetic
	case wasm.OpI32Clz:
		push(uint64(uint32(bits.LeadingZeros32(uint32(pop())))))
	case wasm.OpI32Ctz:
		push(uint64(uint32(bits.TrailingZeros32(uint32(pop())))))
	case wasm.OpI32Popcnt:
		push(uint64(uint32(bits.OnesCount32(uint32(pop())))))
	case wasm.OpI32Add:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a + b))
	case wasm.OpI32Sub:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a - b))
	case wasm.OpI32Mul:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a * b))
	case wasm.OpI32DivS:
		b, a := int32(pop()), int32(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		if a == math.MinInt32 && b == -1 {
			return 0, TrapIntegerOverflow
		}
		push(uint64(uint32(a / b)))
	case wasm.OpI32DivU:
		b, a := uint32(pop()), uint32(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		push(uint64(a / b))
	case wasm.OpI32RemS:
		b, a := int32(pop()), int32(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		if a == math.MinInt32 && b == -1 {
			push(0)
		} else {
			push(uint64(uint32(a % b)))
		}
	case wasm.OpI32RemU:
		b, a := uint32(pop()), uint32(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		push(uint64(a % b))
	case wasm.OpI32And:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a & b))
	case wasm.OpI32Or:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a | b))
	case wasm.OpI32Xor:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a ^ b))
	case wasm.OpI32Shl:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a << (b & 31)))
	case wasm.OpI32ShrS:
		b, a := uint32(pop()), int32(pop())
		push(uint64(uint32(a >> (b & 31))))
	case wasm.OpI32ShrU:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(a >> (b & 31)))
	case wasm.OpI32Rotl:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(bits.RotateLeft32(a, int(b&31))))
	case wasm.OpI32Rotr:
		b, a := uint32(pop()), uint32(pop())
		push(uint64(bits.RotateLeft32(a, -int(b&31))))

	// i64 arithmetic
	case wasm.OpI64Clz:
		push(uint64(bits.LeadingZeros64(pop())))
	case wasm.OpI64Ctz:
		push(uint64(bits.TrailingZeros64(pop())))
	case wasm.OpI64Popcnt:
		push(uint64(bits.OnesCount64(pop())))
	case wasm.OpI64Add:
		b, a := pop(), pop()
		push(a + b)
	case wasm.OpI64Sub:
		b, a := pop(), pop()
		push(a - b)
	case wasm.OpI64Mul:
		b, a := pop(), pop()
		push(a * b)
	case wasm.OpI64DivS:
		b, a := int64(pop()), int64(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		if a == math.MinInt64 && b == -1 {
			return 0, TrapIntegerOverflow
		}
		push(uint64(a / b))
	case wasm.OpI64DivU:
		b, a := pop(), pop()
		if b == 0 {
			return 0, TrapDivideByZero
		}
		push(a / b)
	case wasm.OpI64RemS:
		b, a := int64(pop()), int64(pop())
		if b == 0 {
			return 0, TrapDivideByZero
		}
		if a == math.MinInt64 && b == -1 {
			push(0)
		} else {
			push(uint64(a % b))
		}
	case wasm.OpI64RemU:
		b, a := pop(), pop()
		if b == 0 {
			return 0, TrapDivideByZero
		}
		push(a % b)
	case wasm.OpI64And:
		b, a := pop(), pop()
		push(a & b)
	case wasm.OpI64Or:
		b, a := pop(), pop()
		push(a | b)
	case wasm.OpI64Xor:
		b, a := pop(), pop()
		push(a ^ b)
	case wasm.OpI64Shl:
		b, a := pop(), pop()
		push(a << (b & 63))
	case wasm.OpI64ShrS:
		b, a := pop(), int64(pop())
		push(uint64(a >> (b & 63)))
	case wasm.OpI64ShrU:
		b, a := pop(), pop()
		push(a >> (b & 63))
	case wasm.OpI64Rotl:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, int(b&63)))
	case wasm.OpI64Rotr:
		b, a := pop(), pop()
		push(bits.RotateLeft64(a, -int(b&63)))

	// f32 arithmetic
	case wasm.OpF32Abs, wasm.OpF32Neg, wasm.OpF32Ceil, wasm.OpF32Floor,
		wasm.OpF32Trunc, wasm.OpF32Nearest, wasm.OpF32Sqrt:
		a := float64(math.Float32frombits(uint32(pop())))
		push(f32bits(float32(funary(op, a))))
	case wasm.OpF32Add, wasm.OpF32Sub, wasm.OpF32Mul, wasm.OpF32Div,
		wasm.OpF32Min, wasm.OpF32Max, wasm.OpF32Copysign:
		b := float64(math.Float32frombits(uint32(pop())))
		a := float64(math.Float32frombits(uint32(pop())))
		push(f32bits(float32(fbinary(op, a, b))))

	// f64 arithmetic
	case wasm.OpF64Abs, wasm.OpF64Neg, wasm.OpF64Ceil, wasm.OpF64Floor,
		wasm.OpF64Trunc, wasm.OpF64Nearest, wasm.OpF64Sqrt:
		a := math.Float64frombits(pop())
		push(f64bits(funary(op, a)))
	case wasm.OpF64Add, wasm.OpF64Sub, wasm.OpF64Mul, wasm.OpF64Div,
		wasm.OpF64Min, wasm.OpF64Max, wasm.OpF64Copysign:
		b := math.Float64frombits(pop())
		a := math.Float64frombits(pop())
		push(f64bits(fbinary(op, a, b)))

	// conversions
	case wasm.OpI32WrapI64:
		push(uint64(uint32(pop())))
	case wasm.OpI64ExtendI32S:
		push(uint64(int64(int32(uint32(pop())))))
	case wasm.OpI64ExtendI32U:
		push(uint64(uint32(pop())))
	case wasm.OpI32TruncF32S, wasm.OpI32TruncF64S:
		f := popFloat(op, &stack)
		if !(f > -2147483649 && f < 2147483648) { // NaN fails both
			return 0, truncTrap(f)
		}
		push(uint64(uint32(int32(f))))
	case wasm.OpI32TruncF32U, wasm.OpI32TruncF64U:
		f := popFloat(op, &stack)
		if !(f > -1 && f < 4294967296) {
			return 0, truncTrap(f)
		}
		push(uint64(uint32(f)))
	case wasm.OpI64TruncF32S, wasm.OpI64TruncF64S:
		f := popFloat(op, &stack)
		if !(f >= -9223372036854775808 && f < 9223372036854775808) {
			return 0, truncTrap(f)
		}
		push(uint64(int64(f)))
	case wasm.OpI64TruncF32U, wasm.OpI64TruncF64U:
		f := popFloat(op, &stack)
		if !(f > -1 && f < 18446744073709551616) {
			return 0, truncTrap(f)
		}
		push(uint64(f))
	case wasm.OpF32ConvertI32S:
		push(f32bits(float32(int32(uint32(pop())))))
	case wasm.OpF32ConvertI32U:
		push(f32bits(float32(uint32(pop()))))
	case wasm.OpF32ConvertI64S:
		push(f32bits(float32(int64(pop()))))
	case wasm.OpF32ConvertI64U:
		push(f32bits(float32(pop())))
	case wasm.OpF32DemoteF64:
		push(f32bits(float32(math.Float64frombits(pop()))))
	case wasm.OpF64ConvertI32S:
		push(f64bits(float64(int32(uint32(pop())))))
	case wasm.OpF64ConvertI32U:
		push(f64bits(float64(uint32(pop()))))
	case wasm.OpF64ConvertI64S:
		push(f64bits(float64(int64(pop()))))
	case wasm.OpF64ConvertI64U:
		push(f64bits(float64(pop())))
	case wasm.OpF64PromoteF32:
		push(f64bits(float64(math.Float32frombits(uint32(pop())))))
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		// Raw-bits representation makes reinterpretation the identity,
		// except i32<-f32 must mask to 32 bits.
		v := pop()
		if op == wasm.OpI32ReinterpretF32 || op == wasm.OpF32ReinterpretI32 {
			v = uint64(uint32(v))
		}
		push(v)
	default:
		return 0, TrapHostError
	}
	return 0, 0
}

func popFloat(op wasm.Opcode, stack *[]uint64) float64 {
	s := *stack
	v := s[len(s)-1]
	*stack = s[:len(s)-1]
	switch op {
	case wasm.OpI32TruncF32S, wasm.OpI32TruncF32U, wasm.OpI64TruncF32S, wasm.OpI64TruncF32U:
		return float64(math.Float32frombits(uint32(v)))
	default:
		return math.Float64frombits(v)
	}
}

func truncTrap(f float64) TrapKind {
	if math.IsNaN(f) {
		return TrapInvalidConversion
	}
	return TrapIntegerOverflow
}

func fcmp(op wasm.Opcode, a, b float64) bool {
	switch op {
	case wasm.OpF32Eq, wasm.OpF64Eq:
		return a == b
	case wasm.OpF32Ne, wasm.OpF64Ne:
		return a != b
	case wasm.OpF32Lt, wasm.OpF64Lt:
		return a < b
	case wasm.OpF32Gt, wasm.OpF64Gt:
		return a > b
	case wasm.OpF32Le, wasm.OpF64Le:
		return a <= b
	default:
		return a >= b
	}
}

func funary(op wasm.Opcode, a float64) float64 {
	switch op {
	case wasm.OpF32Abs, wasm.OpF64Abs:
		return math.Abs(a)
	case wasm.OpF32Neg, wasm.OpF64Neg:
		return -a
	case wasm.OpF32Ceil, wasm.OpF64Ceil:
		return math.Ceil(a)
	case wasm.OpF32Floor, wasm.OpF64Floor:
		return math.Floor(a)
	case wasm.OpF32Trunc, wasm.OpF64Trunc:
		return math.Trunc(a)
	case wasm.OpF32Nearest, wasm.OpF64Nearest:
		return math.RoundToEven(a)
	default:
		return math.Sqrt(a)
	}
}

func fbinary(op wasm.Opcode, a, b float64) float64 {
	switch op {
	case wasm.OpF32Add, wasm.OpF64Add:
		return a + b
	case wasm.OpF32Sub, wasm.OpF64Sub:
		return a - b
	case wasm.OpF32Mul, wasm.OpF64Mul:
		return a * b
	case wasm.OpF32Div, wasm.OpF64Div:
		return a / b
	case wasm.OpF32Min, wasm.OpF64Min:
		return math.Min(a, b)
	case wasm.OpF32Max, wasm.OpF64Max:
		return math.Max(a, b)
	default:
		return math.Copysign(a, b)
	}
}
