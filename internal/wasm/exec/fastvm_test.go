package exec

import (
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/wasm"
)

// diffOutcome captures everything observable about one invocation, for
// fast-vs-reference comparison.
type diffOutcome struct {
	results []uint64
	trap    TrapKind // 0 when the call succeeded
	fuel    int64    // fuel consumed (meaningful only on success)
	memHash uint64
	globals []uint64
}

func memHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// runEngine instantiates m fresh and invokes "f" on one engine.
func runEngine(t *testing.T, m *wasm.Module, fast bool, fuel int64, args ...uint64) diffOutcome {
	t.Helper()
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	var vm *VM
	if fast {
		vm = NewFastVM(inst)
	} else {
		vm = NewVM(inst)
	}
	vm.SetFuel(fuel)
	res, err := vm.Invoke("f", args...)
	out := diffOutcome{results: res, memHash: memHash(inst.mem), globals: append([]uint64(nil), inst.globals...)}
	if err != nil {
		tr, ok := AsTrap(err)
		if !ok {
			t.Fatalf("non-trap error: %v", err)
		}
		out.trap = tr.Kind
		return out
	}
	out.fuel = fuel - vm.Fuel()
	return out
}

// runBoth runs "f" on both engines and fails the test on any observable
// divergence: results, trap kind, fuel consumed (successful runs), final
// memory, and final globals.
func runBoth(t *testing.T, m *wasm.Module, args ...uint64) diffOutcome {
	t.Helper()
	ref := runEngine(t, m, false, DefaultFuel, args...)
	fast := runEngine(t, m, true, DefaultFuel, args...)
	if ref.trap != fast.trap {
		t.Fatalf("trap divergence: reference %v, fast %v", ref.trap, fast.trap)
	}
	if len(ref.results) != len(fast.results) {
		t.Fatalf("result count divergence: reference %v, fast %v", ref.results, fast.results)
	}
	for i := range ref.results {
		if ref.results[i] != fast.results[i] {
			t.Fatalf("result %d divergence: reference %#x, fast %#x", i, ref.results[i], fast.results[i])
		}
	}
	if ref.trap == 0 && ref.fuel != fast.fuel {
		t.Fatalf("fuel divergence: reference %d, fast %d", ref.fuel, fast.fuel)
	}
	if ref.memHash != fast.memHash {
		t.Fatalf("memory divergence")
	}
	for i := range ref.globals {
		if ref.globals[i] != fast.globals[i] {
			t.Fatalf("global %d divergence: %#x vs %#x", i, ref.globals[i], fast.globals[i])
		}
	}
	return ref
}

// TestSpecCorners is the table-driven corner-semantics suite: every entry
// is asserted against the reference interpreter and the fast engine from
// the same table, and the two engines are compared against each other.
func TestSpecCorners(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	i64 := []wasm.ValType{wasm.I64}
	tests := []struct {
		name    string
		results []wasm.ValType
		body    []wasm.Instr
		want    uint64
		trap    TrapKind
	}{
		// Division and remainder trap corners.
		{name: "i32.div_s by zero", results: i32, trap: TrapDivideByZero,
			body: []wasm.Instr{wasm.I32Const(7), wasm.I32Const(0), wasm.Op0(wasm.OpI32DivS)}},
		{name: "i32.div_u by zero", results: i32, trap: TrapDivideByZero,
			body: []wasm.Instr{wasm.I32Const(7), wasm.I32Const(0), wasm.Op0(wasm.OpI32DivU)}},
		{name: "i32.rem_s by zero", results: i32, trap: TrapDivideByZero,
			body: []wasm.Instr{wasm.I32Const(7), wasm.I32Const(0), wasm.Op0(wasm.OpI32RemS)}},
		{name: "i32.div_s MinInt/-1 overflows", results: i32, trap: TrapIntegerOverflow,
			body: []wasm.Instr{wasm.I32Const(math.MinInt32), wasm.I32Const(-1), wasm.Op0(wasm.OpI32DivS)}},
		{name: "i32.rem_s MinInt/-1 is zero", results: i32, want: 0,
			body: []wasm.Instr{wasm.I32Const(math.MinInt32), wasm.I32Const(-1), wasm.Op0(wasm.OpI32RemS)}},
		{name: "i64.div_s by zero", results: i64, trap: TrapDivideByZero,
			body: []wasm.Instr{wasm.I64Const(7), wasm.I64Const(0), wasm.Op0(wasm.OpI64DivS)}},
		{name: "i64.div_s MinInt/-1 overflows", results: i64, trap: TrapIntegerOverflow,
			body: []wasm.Instr{wasm.I64Const(math.MinInt64), wasm.I64Const(-1), wasm.Op0(wasm.OpI64DivS)}},
		{name: "i64.rem_s MinInt/-1 is zero", results: i64, want: 0,
			body: []wasm.Instr{wasm.I64Const(math.MinInt64), wasm.I64Const(-1), wasm.Op0(wasm.OpI64RemS)}},

		// Shift-amount masking.
		{name: "i32.shl masks shift to 5 bits", results: i32, want: 2,
			body: []wasm.Instr{wasm.I32Const(1), wasm.I32Const(33), wasm.Op0(wasm.OpI32Shl)}},
		{name: "i32.shr_s masks and sign-extends", results: i32, want: 0xc0000000,
			body: []wasm.Instr{wasm.I32Const(math.MinInt32), wasm.I32Const(33), wasm.Op0(wasm.OpI32ShrS)}},
		{name: "i64.shl masks shift to 6 bits", results: i64, want: 2,
			body: []wasm.Instr{wasm.I64Const(1), wasm.I64Const(65), wasm.Op0(wasm.OpI64Shl)}},
		{name: "i64.shr_u masks shift", results: i64, want: 0x7fffffffffffffff,
			body: []wasm.Instr{wasm.I64Const(-1), wasm.I64Const(65), wasm.Op0(wasm.OpI64ShrU)}},

		// Signed vs unsigned comparisons.
		{name: "i32.lt_u treats -1 as max", results: i32, want: 0,
			body: []wasm.Instr{wasm.I32Const(-1), wasm.I32Const(1), wasm.Op0(wasm.OpI32LtU)}},
		{name: "i32.lt_s keeps -1 negative", results: i32, want: 1,
			body: []wasm.Instr{wasm.I32Const(-1), wasm.I32Const(1), wasm.Op0(wasm.OpI32LtS)}},
		{name: "i64.gt_u treats -1 as max", results: i32, want: 1,
			body: []wasm.Instr{wasm.I64Const(-1), wasm.I64Const(1), wasm.Op0(wasm.OpI64GtU)}},

		// Sign/zero-extending loads and wrapping stores.
		{name: "i32.load8_s sign-extends", results: i32, want: uint64(uint32(0xffffff80)),
			body: []wasm.Instr{
				wasm.I32Const(0), wasm.I32Const(0x80), wasm.Store(wasm.OpI32Store8, 0),
				wasm.I32Const(0), wasm.Load(wasm.OpI32Load8S, 0)}},
		{name: "i32.load8_u zero-extends", results: i32, want: 0x80,
			body: []wasm.Instr{
				wasm.I32Const(0), wasm.I32Const(0x80), wasm.Store(wasm.OpI32Store8, 0),
				wasm.I32Const(0), wasm.Load(wasm.OpI32Load8U, 0)}},
		{name: "i64.load16_s sign-extends", results: i64, want: 0xfffffffffffffffe,
			body: []wasm.Instr{
				wasm.I32Const(4), wasm.I64Const(0xfffe), wasm.Store(wasm.OpI64Store16, 0),
				wasm.I32Const(4), wasm.Load(wasm.OpI64Load16S, 0)}},
		{name: "i64.load32_u zero-extends", results: i64, want: 0xfffffffe,
			body: []wasm.Instr{
				wasm.I32Const(4), wasm.I64Const(-2), wasm.Store(wasm.OpI64Store32, 0),
				wasm.I32Const(4), wasm.Load(wasm.OpI64Load32U, 0)}},
		{name: "i32.store8 wraps the value", results: i32, want: 0x34,
			body: []wasm.Instr{
				wasm.I32Const(9), wasm.I32Const(0x1234), wasm.Store(wasm.OpI32Store8, 0),
				wasm.I32Const(9), wasm.Load(wasm.OpI32Load8U, 0)}},
		{name: "little-endian byte order", results: i32, want: 0x12,
			body: []wasm.Instr{
				wasm.I32Const(16), wasm.I32Const(0x12345678), wasm.Store(wasm.OpI32Store, 0),
				wasm.I32Const(19), wasm.Load(wasm.OpI32Load8U, 0)}},

		// Unaligned and out-of-bounds access.
		{name: "unaligned i64 load round-trips", results: i64, want: 0x1122334455667788,
			body: []wasm.Instr{
				wasm.I32Const(3), wasm.I64Const(0x1122334455667788), wasm.Store(wasm.OpI64Store, 0),
				wasm.I32Const(3), wasm.Load(wasm.OpI64Load, 0)}},
		{name: "load just past end traps", results: i32, trap: TrapMemoryOutOfBounds,
			body: []wasm.Instr{wasm.I32Const(PageSize - 3), wasm.Load(wasm.OpI32Load, 0)}},
		{name: "offset overflow traps", results: i32, trap: TrapMemoryOutOfBounds,
			body: []wasm.Instr{wasm.I32Const(-1), wasm.Load(wasm.OpI32Load, 4)}},
		{name: "fused const store out of bounds traps", results: i32, trap: TrapMemoryOutOfBounds,
			body: []wasm.Instr{
				wasm.I32Const(PageSize - 1), wasm.I32Const(5), wasm.Store(wasm.OpI32Store, 0),
				wasm.I32Const(0)}},

		// Truncation range checks.
		{name: "i32.trunc_f64_s NaN traps", results: i32, trap: TrapInvalidConversion,
			body: []wasm.Instr{
				wasm.Instr{Op: wasm.OpF64Const, Imm: math.Float64bits(math.NaN())},
				wasm.Op0(wasm.OpI32TruncF64S)}},
		{name: "i32.trunc_f64_s overflow traps", results: i32, trap: TrapIntegerOverflow,
			body: []wasm.Instr{
				wasm.Instr{Op: wasm.OpF64Const, Imm: math.Float64bits(3e9)},
				wasm.Op0(wasm.OpI32TruncF64S)}},

		// Wrapping and extension.
		{name: "i32.wrap_i64 truncates", results: i32, want: 0x9abcdef0,
			body: []wasm.Instr{wasm.I64Const(0x123456789abcdef0), wasm.Op0(wasm.OpI32WrapI64)}},
		{name: "i64.extend_i32_s sign-extends", results: i64, want: 0xfffffffffffffffb,
			body: []wasm.Instr{wasm.I32Const(-5), wasm.Op0(wasm.OpI64ExtendI32S)}},
		{name: "i64.extend_i32_u zero-extends", results: i64, want: 0xfffffffb,
			body: []wasm.Instr{wasm.I32Const(-5), wasm.Op0(wasm.OpI64ExtendI32U)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := buildModule(t, nil, tt.results, nil, tt.body)
			out := runBoth(t, m)
			if out.trap != tt.trap {
				t.Fatalf("trap = %v, want %v", out.trap, tt.trap)
			}
			if tt.trap == 0 {
				if len(out.results) != 1 || out.results[0] != tt.want {
					t.Fatalf("results = %#x, want %#x", out.results, tt.want)
				}
			}
		})
	}
}

// TestMemoryGrowCorners covers memory.grow edges against both engines:
// growth within limits, growth past a declared max, and past the 4GiB cap.
func TestMemoryGrowCorners(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	tests := []struct {
		name  string
		max   uint32
		body  []wasm.Instr
		want  uint64
		wantH bool
	}{
		{name: "grow within max returns previous size", max: 2, want: 1,
			body: []wasm.Instr{wasm.I32Const(1), wasm.Op0(wasm.OpMemoryGrow)}},
		{name: "grow past max fails", max: 2, want: uint64(uint32(0xffffffff)),
			body: []wasm.Instr{wasm.I32Const(2), wasm.Op0(wasm.OpMemoryGrow)}},
		{name: "grow past 4GiB cap fails", max: 0, want: uint64(uint32(0xffffffff)),
			body: []wasm.Instr{wasm.I32Const(70000), wasm.Op0(wasm.OpMemoryGrow)}},
		{name: "grow zero reports current size", max: 2, want: 1,
			body: []wasm.Instr{wasm.I32Const(0), wasm.Op0(wasm.OpMemoryGrow)}},
		{name: "size after grow", max: 4, want: 3,
			body: []wasm.Instr{
				wasm.I32Const(2), wasm.Op0(wasm.OpMemoryGrow), wasm.Drop(),
				wasm.Op0(wasm.OpMemorySize)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := buildModule(t, nil, i32, nil, tt.body)
			m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1, Max: tt.max, HasMax: tt.max != 0}}}
			out := runBoth(t, m)
			if out.trap != 0 || len(out.results) != 1 || out.results[0] != tt.want {
				t.Fatalf("trap=%v results=%#x, want %#x", out.trap, out.results, tt.want)
			}
		})
	}
}

// TestIRCompilesCommonShapes guards against the fast engine silently
// falling back to the tree-walker for ordinary well-typed bodies.
func TestIRCompilesCommonShapes(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	bodies := map[string][]wasm.Instr{
		"arith": {wasm.I32Const(2), wasm.I32Const(3), wasm.Op0(wasm.OpI32Add)},
		"if-else": {wasm.I32Const(1), wasm.IfTyped(wasm.I32), wasm.I32Const(10),
			wasm.Else(), wasm.I32Const(20), wasm.End()},
		"loop": {wasm.Block(), wasm.Loop(), wasm.I32Const(1), wasm.BrIf(1),
			wasm.Br(0), wasm.End(), wasm.End(), wasm.I32Const(4)},
		"br_table": {wasm.Block(), wasm.I32Const(0),
			wasm.BrTable([]uint32{0}, 0), wasm.End(), wasm.I32Const(9)},
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			m := buildModule(t, nil, i32, nil, body)
			p := programFor(m)
			if p.funcs[0] == nil {
				t.Fatalf("body %q was rejected by the IR compiler", name)
			}
			runBoth(t, m)
		})
	}
}

// TestIRFusion checks the superinstruction patterns are both emitted and
// semantically exact.
func TestIRFusion(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	m := buildModule(t, []wasm.ValType{wasm.I32, wasm.I32}, i32, nil, []wasm.Instr{
		wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op0(wasm.OpI32Add), // get+get+add
		wasm.I32Const(5), wasm.Op0(wasm.OpI32Add), // const+add
		wasm.I32Const(0), wasm.I32Const(0x7777), wasm.Store(wasm.OpI32Store16, 0), // const+store
		wasm.I32Const(0), wasm.Load(wasm.OpI32Load16U, 0), wasm.Op0(wasm.OpI32Add),
	})
	p := programFor(m)
	fn := p.funcs[0]
	if fn == nil {
		t.Fatal("fusion body rejected")
	}
	found := map[irOp]bool{}
	for _, in := range fn.code {
		found[in.op] = true
	}
	for _, want := range []irOp{irGetGetAddI32, irConstAddI32, irConstStore} {
		if !found[want] {
			t.Fatalf("superinstruction %d not emitted; ops: %v", want, fn.code)
		}
	}
	out := runBoth(t, m, 40, 2)
	if want := uint64(40 + 2 + 5 + 0x7777); out.results[0] != want {
		t.Fatalf("fused result %#x, want %#x", out.results[0], want)
	}
}

// TestFastFuelParity pins the fuel-parity contract on a mixed workload:
// control flow, calls and memory traffic consume identical fuel on both
// engines.
func TestFastFuelParity(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	// sum of i in [0, n) with a call per iteration
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	ti := m.AddType(wasm.FuncType{Params: i32, Results: i32})
	m.Funcs = []uint32{ti, ti}
	m.Code = []wasm.Code{
		{Locals: []wasm.LocalDecl{{Count: 2, Type: wasm.I32}}, Body: []wasm.Instr{
			wasm.Block(), wasm.Loop(),
			wasm.LocalGet(1), wasm.LocalGet(0), wasm.Op0(wasm.OpI32GeU), wasm.BrIf(1),
			wasm.LocalGet(2), wasm.LocalGet(1), wasm.Call(1), wasm.Op0(wasm.OpI32Add), wasm.LocalSet(2),
			wasm.LocalGet(1), wasm.I32Const(1), wasm.Op0(wasm.OpI32Add), wasm.LocalSet(1),
			wasm.Br(0), wasm.End(), wasm.End(),
			wasm.LocalGet(2), wasm.End(),
		}},
		{Body: []wasm.Instr{wasm.LocalGet(0), wasm.I32Const(3), wasm.Op0(wasm.OpI32Mul), wasm.End()}},
	}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternalFunc, Index: 0}}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	out := runBoth(t, m, 50)
	want := uint64(0)
	for i := uint64(0); i < 50; i++ {
		want += i * 3
	}
	if out.results[0] != uint64(uint32(want)) {
		t.Fatalf("result %d, want %d", out.results[0], want)
	}
}

// TestFastFallbackIllTyped: bodies the static pass rejects still execute
// (on the tree-walker) with identical observable behaviour.
func TestFastFallbackIllTyped(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	// if-with-result-without-else pushes nothing on the false path in the
	// reference engine; the IR compiler must reject it and fall back.
	body := []wasm.Instr{
		wasm.I32Const(1),
		wasm.I32Const(0), wasm.IfTyped(wasm.I32), wasm.I32Const(2), wasm.End(),
	}
	m := buildModule(t, nil, i32, nil, body)
	if fn := programFor(m).funcs[0]; fn != nil {
		t.Fatal("ill-typed body unexpectedly compiled")
	}
	runBoth(t, m)
}

// TestFastObserver checks the tracing variant sees every charged unit of
// fuel exactly once.
func TestFastObserver(t *testing.T) {
	i32 := []wasm.ValType{wasm.I32}
	m := buildModule(t, nil, i32, nil, []wasm.Instr{
		wasm.I32Const(2), wasm.I32Const(3), wasm.Op0(wasm.OpI32Add),
	})
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	vm := NewFastVM(inst)
	var traced int
	vm.SetFastObserver(func(fi uint32, pc, cost int) { traced += cost })
	start := vm.Fuel()
	if _, err := vm.Invoke("f"); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := start - vm.Fuel(); int64(traced) != got {
		t.Fatalf("observer saw %d fuel units, engine charged %d", traced, got)
	}
}
