package exec

import (
	"testing"

	"repro/internal/contractgen"
	"repro/internal/wasm"
)

// hostCall records one imported-function invocation for sequence comparison.
type hostCall struct {
	name string
	args string
}

// fuzzResolver builds a resolver that satisfies every function import of m
// with a recorder returning zeroes of the declared result arity, so that
// mutated modules with arbitrary import shapes still instantiate and the
// host-call sequence stays comparable across engines.
func fuzzResolver(m *wasm.Module, log *[]hostCall) Resolver {
	r := Resolver{}
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternalFunc {
			continue
		}
		if int(imp.TypeIndex) >= len(m.Types) {
			continue
		}
		nResults := len(m.Types[imp.TypeIndex].Results)
		hm, ok := r[imp.Module]
		if !ok {
			hm = HostModule{}
			r[imp.Module] = hm
		}
		name := imp.Module + "." + imp.Name
		hm[imp.Name] = func(vm *VM, args []uint64) ([]uint64, error) {
			buf := make([]byte, 0, 8*len(args))
			for _, a := range args {
				for i := 0; i < 8; i++ {
					buf = append(buf, byte(a>>(8*i)))
				}
			}
			*log = append(*log, hostCall{name: name, args: string(buf)})
			return make([]uint64, nResults), nil
		}
	}
	return r
}

const fuzzFuel = 1 << 20

// fuzzRun invokes every zero-parameter exported function of m in export
// order on one engine and returns the aggregate observable behaviour.
func fuzzRun(m *wasm.Module, fast bool) (outcomes []semOutcome, calls []hostCall, ok bool) {
	inst, err := Instantiate(m, fuzzResolver(m, &calls))
	if err != nil {
		return nil, nil, false
	}
	for _, exp := range m.Exports {
		if exp.Kind != wasm.ExternalFunc || int(exp.Index) >= len(inst.funcs) {
			continue
		}
		if len(inst.funcs[exp.Index].typ.Params) != 0 {
			continue
		}
		var vm *VM
		if fast {
			vm = NewFastVM(inst)
		} else {
			vm = NewVM(inst)
		}
		vm.SetFuel(fuzzFuel)
		res, err := vm.InvokeIndex(exp.Index)
		o := semOutcome{result: res, memHash: memHash(inst.mem)}
		if err != nil {
			if tr, isTrap := AsTrap(err); isTrap {
				o.trap = tr.Kind
			} else {
				o.trap = TrapHostError
			}
		} else {
			o.fuel = fuzzFuel - vm.Fuel()
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, calls, true
}

// FuzzFastVM feeds mutated module binaries through both engines and
// requires identical traps, results, final memory hashes, host-call
// sequences, and (on success) fuel. Seeds come from the semantics
// generator, so mutations explore the neighbourhood of valid,
// behaviour-rich programs rather than mostly failing to decode.
func FuzzFastVM(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		if bin, err := wasm.Encode(contractgen.GenerateSemantics(seed).Module); err == nil {
			f.Add(bin)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wasm.Decode(data)
		if err != nil {
			return
		}
		if err := wasm.Validate(m); err != nil {
			return
		}
		ref, refCalls, ok := fuzzRun(m, false)
		if !ok {
			return
		}
		fast, fastCalls, _ := fuzzRun(m, true)
		if len(ref) != len(fast) {
			t.Fatalf("invocation count divergence: %d vs %d", len(ref), len(fast))
		}
		for i := range ref {
			if ref[i].trap != fast[i].trap {
				t.Fatalf("export %d: trap divergence: reference %v, fast %v", i, ref[i].trap, fast[i].trap)
			}
			if ref[i].memHash != fast[i].memHash {
				t.Fatalf("export %d: memory divergence", i)
			}
			if ref[i].trap != 0 {
				continue
			}
			if len(ref[i].result) != len(fast[i].result) {
				t.Fatalf("export %d: result arity divergence", i)
			}
			for j := range ref[i].result {
				if ref[i].result[j] != fast[i].result[j] {
					t.Fatalf("export %d: result divergence: %v vs %v", i, ref[i].result, fast[i].result)
				}
			}
			if ref[i].fuel != fast[i].fuel {
				t.Fatalf("export %d: fuel divergence: %d vs %d", i, ref[i].fuel, fast[i].fuel)
			}
		}
		if len(refCalls) != len(fastCalls) {
			t.Fatalf("host-call sequence length divergence: %d vs %d", len(refCalls), len(fastCalls))
		}
		for i := range refCalls {
			if refCalls[i] != fastCalls[i] {
				t.Fatalf("host-call divergence at %d: %v vs %v", i, refCalls[i], fastCalls[i])
			}
		}
	})
}
