package wasm

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleModule builds a module exercising every section kind.
func sampleModule() *Module {
	m := &Module{FuncNames: map[uint32]string{}}
	tVoid := m.AddType(FuncType{})
	tBin := m.AddType(FuncType{Params: []ValType{I64, I64}, Results: []ValType{I64}})
	m.Imports = []Import{
		{Module: "env", Name: "host", Kind: ExternalFunc, TypeIndex: tVoid},
		{Module: "env", Name: "glob", Kind: ExternalGlobal, Global: GlobalType{Type: I32}},
	}
	m.Funcs = []uint32{tBin, tVoid}
	m.Code = []Code{
		{
			Locals: []LocalDecl{{Count: 2, Type: I32}, {Count: 1, Type: F64}},
			Body: []Instr{
				LocalGet(0), LocalGet(1), Op0(OpI64Add),
				I64Const(-42), Op0(OpI64Xor),
				Block(), I32Const(1), BrIf(0), End(),
				LocalGet(0),
				{Op: OpBrTable, Table: []uint32{0, 0}, A: 0},
				End(),
			},
		},
		{Body: []Instr{
			I32Const(16), Load(OpI32Load, 4), Drop(),
			I32Const(16), I64Const(7), Store(OpI64Store, 8),
			{Op: OpF32Const, Imm: 0x3f800000},
			Drop(),
			{Op: OpF64Const, Imm: 0x4000000000000000},
			Drop(),
			End(),
		}},
	}
	m.Tables = []TableType{{Limits: Limits{Min: 2, Max: 4, HasMax: true}}}
	m.Memories = []MemType{{Limits: Limits{Min: 1}}}
	m.Globals = []Global{
		{Type: GlobalType{Type: I64, Mutable: true}, Init: []Instr{I64Const(99)}},
	}
	m.Exports = []Export{
		{Name: "f", Kind: ExternalFunc, Index: 2},
		{Name: "memory", Kind: ExternalMemory, Index: 0},
	}
	m.Elems = []ElemSegment{{Offset: []Instr{I32Const(0)}, Funcs: []uint32{2, 3}}}
	m.Data = []DataSegment{{Offset: []Instr{I32Const(8)}, Data: []byte("hello")}}
	m.Customs = []CustomSection{{Name: "meta", Data: []byte{1, 2, 3}}}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleModule()
	bin, err := Encode(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Field-by-field structural equality (FuncNames comes from the name
	// section, which sampleModule does not emit).
	back.FuncNames = m.FuncNames
	if !reflect.DeepEqual(m.Types, back.Types) {
		t.Errorf("types mismatch")
	}
	if !reflect.DeepEqual(m.Imports, back.Imports) {
		t.Errorf("imports mismatch: %+v vs %+v", m.Imports, back.Imports)
	}
	if !reflect.DeepEqual(m.Funcs, back.Funcs) {
		t.Errorf("funcs mismatch")
	}
	if !reflect.DeepEqual(m.Code, back.Code) {
		t.Errorf("code mismatch:\n%+v\n%+v", m.Code, back.Code)
	}
	if !reflect.DeepEqual(m.Tables, back.Tables) || !reflect.DeepEqual(m.Memories, back.Memories) {
		t.Errorf("tables/memories mismatch")
	}
	if !reflect.DeepEqual(m.Globals, back.Globals) {
		t.Errorf("globals mismatch")
	}
	if !reflect.DeepEqual(m.Exports, back.Exports) {
		t.Errorf("exports mismatch")
	}
	if !reflect.DeepEqual(m.Elems, back.Elems) || !reflect.DeepEqual(m.Data, back.Data) {
		t.Errorf("elems/data mismatch")
	}
	if !reflect.DeepEqual(m.Customs, back.Customs) {
		t.Errorf("customs mismatch")
	}
	// Double round trip is byte-identical (canonical encoding).
	bin2, err := Encode(back)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(bin) != string(bin2) {
		t.Error("encoding is not canonical")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode([]byte{0, 0, 0, 0, 1, 0, 0, 0}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
	if _, err := Decode([]byte{0x00, 0x61}); err == nil {
		t.Error("want error for truncated preamble")
	}
}

func TestDecodeTruncatedSections(t *testing.T) {
	bin, err := Encode(sampleModule())
	if err != nil {
		t.Fatal(err)
	}
	// Any truncation after the preamble must fail, never panic.
	for cut := 9; cut < len(bin); cut += 7 {
		if _, err := Decode(bin[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(bin))
		}
	}
}

func TestDecodeBitFlipsNeverPanic(t *testing.T) {
	bin, err := Encode(sampleModule())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), bin...)
		for j := 0; j < 3; j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		// Must not panic; errors are fine.
		if m, err := Decode(mut); err == nil {
			_ = Validate(m)
		}
	}
}

func TestValidateCatchesBadIndices(t *testing.T) {
	base := func() *Module {
		m := &Module{FuncNames: map[uint32]string{}}
		ti := m.AddType(FuncType{})
		m.Funcs = []uint32{ti}
		m.Code = []Code{{Body: []Instr{End()}}}
		return m
	}

	m := base()
	m.Code[0].Body = []Instr{Call(5), End()}
	if err := Validate(m); err == nil {
		t.Error("call target out of range not caught")
	}

	m = base()
	m.Code[0].Body = []Instr{LocalGet(3), Drop(), End()}
	if err := Validate(m); err == nil {
		t.Error("local index out of range not caught")
	}

	m = base()
	m.Exports = []Export{{Name: "x", Kind: ExternalFunc, Index: 9}}
	if err := Validate(m); err == nil {
		t.Error("export index out of range not caught")
	}

	m = base()
	m.Code[0].Body = []Instr{Block(), End()} // missing final end
	if err := Validate(m); err == nil {
		t.Error("unbalanced control not caught")
	}

	m = base()
	m.Code[0].Body = []Instr{I32Const(1), BrIf(4), End()}
	if err := Validate(m); err == nil {
		t.Error("branch depth not caught")
	}
}

func TestAnalyzeControl(t *testing.T) {
	body := []Instr{
		Block(),     // 0
		I32Const(1), // 1
		If(),        // 2
		Nop2(),      // 3
		Else(),      // 4
		Nop2(),      // 5
		End(),       // 6 (if)
		End(),       // 7 (block)
		If(),        // 8 -- no else
		Nop2(),      // 9
		End(),       // 10
		End(),       // 11 (function)
	}
	meta, err := AnalyzeControl(body)
	if err != nil {
		t.Fatal(err)
	}
	if meta.EndOf[0] != 7 {
		t.Errorf("EndOf[block 0] = %d", meta.EndOf[0])
	}
	if meta.EndOf[2] != 6 || meta.ElseOf[2] != 4 {
		t.Errorf("if 2: end=%d else=%d", meta.EndOf[2], meta.ElseOf[2])
	}
	if meta.EndOf[8] != 10 || meta.ElseOf[8] != 10 {
		t.Errorf("if 8 (no else): end=%d else=%d", meta.EndOf[8], meta.ElseOf[8])
	}
}

// Nop2 avoids a name clash with builder helpers in tests.
func Nop2() Instr { return Instr{Op: OpNop} }

func TestFuncTypeAt(t *testing.T) {
	m := sampleModule()
	ft, err := m.FuncTypeAt(0) // import
	if err != nil || len(ft.Params) != 0 {
		t.Errorf("import type: %v %v", ft, err)
	}
	// Index space: 0 = env.host import, 1 = first local (binary sig),
	// 2 = second local (void sig).
	ft, err = m.FuncTypeAt(1)
	if err != nil || len(ft.Params) != 2 {
		t.Errorf("local type: %v %v", ft, err)
	}
	if _, err := m.FuncTypeAt(99); err == nil {
		t.Error("out of range not caught")
	}
}

func TestInstrRoundTripQuick(t *testing.T) {
	// Property: encode+decode of a code body with random const immediates
	// is the identity.
	f := func(vals []int64) bool {
		if len(vals) > 50 {
			vals = vals[:50]
		}
		m := &Module{FuncNames: map[uint32]string{}}
		ti := m.AddType(FuncType{})
		m.Funcs = []uint32{ti}
		var body []Instr
		for _, v := range vals {
			body = append(body, I64Const(v), Drop())
			body = append(body, I32Const(int32(v)), Drop())
		}
		body = append(body, End())
		m.Code = []Code{{Body: body}}
		bin, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(bin)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m.Code, back.Code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExportedFunc(t *testing.T) {
	m := sampleModule()
	idx, ok := m.ExportedFunc("f")
	if !ok || idx != 2 {
		t.Errorf("ExportedFunc = %d %v", idx, ok)
	}
	if _, ok := m.ExportedFunc("nosuch"); ok {
		t.Error("found non-existent export")
	}
}

func TestWatRendersAllSections(t *testing.T) {
	m := sampleModule()
	m.FuncNames[2] = "first"
	out := Wat(m)
	for _, want := range []string{
		"(module", "(type", "(import \"env\" \"host\" (func))",
		"(table 2 4 funcref)", "(memory 1)", "(global (;0;) (mut i64) (i64.const 99))",
		"(func (;2;) $first", "(local i32 i32 f64)",
		"(export \"f\" (func 2))", "(elem (i32.const 0) func 2 3)",
		"(data (i32.const 8) \"hello\")", "br_table",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wat output missing %q:\n%s", want, out)
		}
	}
}
