package chain

import (
	"strings"
	"testing"

	"repro/internal/eos"
)

func testCtx() *Context {
	bc := New()
	return &Context{
		chain:    bc,
		Receiver: victim,
		Code:     eos.TokenContract,
		Action:   eos.ActionTransfer,
		Auth:     auth(alice),
		iters:    NewIterCache(bc.db),
	}
}

func TestContextAuth(t *testing.T) {
	ctx := testCtx()
	if !ctx.HasAuth(alice) {
		t.Error("alice should be authorized")
	}
	if ctx.HasAuth(bob) {
		t.Error("bob should not be authorized")
	}
	if err := ctx.RequireAuth(alice); err != nil {
		t.Errorf("RequireAuth(alice): %v", err)
	}
	err := ctx.RequireAuth(bob)
	if err == nil || !strings.Contains(err.Error(), "missing required authority") {
		t.Errorf("RequireAuth(bob): %v", err)
	}
}

func TestRequireRecipientSkipsSelf(t *testing.T) {
	ctx := testCtx()
	ctx.RequireRecipient(victim) // self: no-op
	ctx.RequireRecipient(alice)
	ctx.RequireRecipient(alice) // duplicates are deduplicated at dispatch
	if len(ctx.notified) != 2 {
		t.Errorf("notified = %v", ctx.notified)
	}
	for _, n := range ctx.notified {
		if n == victim {
			t.Error("self-notification recorded")
		}
	}
}

func TestInlineDepthLimit(t *testing.T) {
	// A native contract that re-sends itself inline forever must be cut
	// off by MaxInlineDepth, reverting the transaction.
	bc := New()
	loop := eos.MustName("looper")
	bc.DeployNative(loop, nativeFunc(func(ctx *Context, code, action eos.Name) error {
		if code != ctx.Receiver {
			return nil
		}
		ctx.SendInline(Action{
			Account: loop, Name: action,
			Authorization: auth(loop),
		})
		return nil
	}), nil)
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: loop, Name: eos.MustName("go"), Authorization: auth(loop),
	}}})
	if rcpt.Err == nil || !strings.Contains(rcpt.Err.Error(), "inline action depth") {
		t.Fatalf("want depth-limit error, got %v", rcpt.Err)
	}
}

// nativeFunc adapts a function to the NativeContract interface.
type nativeFunc func(ctx *Context, code, action eos.Name) error

func (f nativeFunc) ApplyNative(ctx *Context, code, action eos.Name) error {
	return f(ctx, code, action)
}

func TestDeferredFailureDoesNotRevertParent(t *testing.T) {
	// A native contract schedules a deferred transfer it cannot afford;
	// the parent transaction still commits.
	bc := New()
	sched := eos.MustName("scheduler")
	bc.DeployNative(sched, nativeFunc(func(ctx *Context, code, action eos.Name) error {
		if code != ctx.Receiver {
			return nil
		}
		ctx.SendDeferred(Transaction{Actions: []Action{{
			Account:       eos.TokenContract,
			Name:          eos.ActionTransfer,
			Authorization: auth(sched),
			Data: EncodeTransfer(TransferArgs{
				From: sched, To: alice, Quantity: eos.MustAsset("999.0000 EOS"),
			}),
		}}})
		// And a visible write so we can confirm the parent committed.
		ctx.chain.db.Store(sched, sched, eos.MustName("mark"), 1, []byte{1})
		return nil
	}), nil)
	bc.CreateAccount(alice)
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: sched, Name: eos.MustName("go"), Authorization: auth(sched),
	}}})
	if rcpt.Err != nil {
		t.Fatalf("parent reverted: %v", rcpt.Err)
	}
	if _, ok := bc.db.Get(sched, sched, eos.MustName("mark"), 1); !ok {
		t.Error("parent write lost even though only the deferred leg failed")
	}
}

func TestUnDeployMakesAccountInert(t *testing.T) {
	bc := New()
	bc.DeployNative(victim, &ForwarderAgent{Victim: alice}, nil)
	bc.UnDeploy(victim)
	if bc.Account(victim).HasCode() {
		t.Error("undeployed account still has code")
	}
	// Actions to it are now no-ops.
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: victim, Name: eos.ActionTransfer, Authorization: auth(alice),
	}}})
	if rcpt.Err != nil {
		t.Errorf("action on undeployed account: %v", rcpt.Err)
	}
}
