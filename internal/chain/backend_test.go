package chain

import (
	"strings"
	"testing"

	"repro/internal/eos"
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// testnetBackend is a second chain personality built for this test: it
// wraps the EOSIO backend and extends it with one extra intrinsic
// (host_magic), its own bootstrap account, and an extended classification.
// The point of the test is the Backend seam itself — a personality that is
// not EOSIO must plug into NewWithBackend and have its host surface,
// bootstrap, and classification consumed without any caller changes.
type testnetBackend struct {
	Backend // the EOSIO personality, extended below

	magicCalls int
}

const testnetMagic = 424242

func newTestnetBackend() *testnetBackend {
	return &testnetBackend{Backend: EOSIO()}
}

func (b *testnetBackend) Name() string { return "testnet" }

func (b *testnetBackend) Bootstrap(bc *Blockchain) {
	b.Backend.Bootstrap(bc)
	bc.CreateAccount(eos.MustName("testnet.sys"))
}

func (b *testnetBackend) HostEnv(bc *Blockchain) exec.HostModule {
	env := b.Backend.HostEnv(bc)
	env["host_magic"] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		b.magicCalls++
		return []uint64{testnetMagic}, nil
	}
	return env
}

func (b *testnetBackend) Classification() APIClassification {
	base := b.Backend.Classification()
	blockinfo := map[string]bool{"host_magic": true}
	for name := range base.Blockinfo {
		blockinfo[name] = true
	}
	return APIClassification{
		Permission: base.Permission,
		Effect:     base.Effect,
		Blockinfo:  blockinfo,
	}
}

// magicModule links against the testnet-only intrinsic: apply() prints
// host_magic(), so the receipt console witnesses that the backend's env —
// not a hard-coded EOSIO surface — served the call.
func magicModule(t *testing.T) *wasm.Module {
	t.Helper()
	m := &wasm.Module{}
	magicTI := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	printTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{
		{Module: "env", Name: "host_magic", Kind: wasm.ExternalFunc, TypeIndex: magicTI},
		{Module: "env", Name: APIPrintI, Kind: wasm.ExternalFunc, TypeIndex: printTI},
	}
	applyTI := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64, wasm.I64}})
	m.Funcs = []uint32{applyTI}
	m.Code = []wasm.Code{{Body: []wasm.Instr{
		wasm.Call(0), wasm.Call(1),
		wasm.End(),
	}}}
	m.Exports = []wasm.Export{{Name: "apply", Kind: wasm.ExternalFunc, Index: 2}}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("magic module invalid: %v", err)
	}
	return m
}

func TestDefaultBackendIsEOSIO(t *testing.T) {
	bc := New()
	if got := bc.Backend().Name(); got != "eosio" {
		t.Fatalf("New() backend = %q, want eosio", got)
	}
	if bc.Account(eos.TokenContract) == nil {
		t.Fatalf("New() did not bootstrap the eosio.token system contract")
	}
}

// TestNewWithBackendPluggability drives a full deploy + transaction on a
// non-EOSIO personality and checks every Backend method was consumed:
// Name labels the chain, Bootstrap ran on construction, HostEnv supplied
// the surface the contract linked and executed against, and
// Classification reflects the extended intrinsic sets.
func TestNewWithBackendPluggability(t *testing.T) {
	b := newTestnetBackend()
	bc := NewWithBackend(b)

	if got := bc.Backend().Name(); got != "testnet" {
		t.Errorf("backend name = %q, want testnet", got)
	}
	if bc.Account(eos.MustName("testnet.sys")) == nil {
		t.Errorf("Bootstrap did not run: testnet.sys account missing")
	}
	if bc.Account(eos.TokenContract) == nil {
		t.Errorf("Bootstrap did not chain to the wrapped personality: eosio.token missing")
	}

	ctr := eos.MustName("magicctr")
	if err := bc.DeployModule(ctr, magicModule(t), nil, nil); err != nil {
		t.Fatalf("deploy against testnet backend: %v", err)
	}
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: ctr, Name: eos.MustName("go"),
		Authorization: auth(alice),
	}}})
	if rcpt.Err != nil {
		t.Fatalf("apply failed: %v", rcpt.Err)
	}
	if !strings.Contains(rcpt.Console, "424242") {
		t.Errorf("console = %q, want the host_magic value 424242", rcpt.Console)
	}
	if b.magicCalls != 1 {
		t.Errorf("host_magic calls = %d, want 1", b.magicCalls)
	}

	cls := bc.Backend().Classification()
	if !cls.Blockinfo["host_magic"] {
		t.Errorf("classification lost the extended blockinfo intrinsic")
	}
	if !cls.Permission[APIRequireAuth] || !cls.Effect[APIDBStore] {
		t.Errorf("classification lost the wrapped personality's sets")
	}

	// The same module must fail to link on the default personality: the
	// host surface really is backend-supplied, not a global.
	if err := New().DeployModule(eos.MustName("magicctr"), magicModule(t), nil, nil); err == nil {
		t.Errorf("EOSIO chain linked a module importing the testnet-only intrinsic")
	}
}
