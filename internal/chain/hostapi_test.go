package chain

import (
	"strings"
	"testing"

	"repro/internal/eos"
	"repro/internal/wasm"
)

// hostAPIModule builds a contract whose apply() exercises the host API
// surface directly: prints, db store/find/get/next, memcpy/memset, tapos,
// current_receiver, and send_inline.
func hostAPIModule(t *testing.T) *wasm.Module {
	t.Helper()
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	sig := func(params []wasm.ValType, results []wasm.ValType) uint32 {
		return m.AddType(wasm.FuncType{Params: params, Results: results})
	}
	i32, i64 := wasm.I32, wasm.I64
	imports := []struct {
		name string
		ti   uint32
	}{
		{"prints_l", sig([]wasm.ValType{i32, i32}, nil)},                                         // 0
		{"printi", sig([]wasm.ValType{i64}, nil)},                                                // 1
		{"db_store_i64", sig([]wasm.ValType{i64, i64, i64, i64, i32, i32}, []wasm.ValType{i32})}, // 2
		{"db_find_i64", sig([]wasm.ValType{i64, i64, i64, i64}, []wasm.ValType{i32})},            // 3
		{"db_get_i64", sig([]wasm.ValType{i32, i32, i32}, []wasm.ValType{i32})},                  // 4
		{"db_next_i64", sig([]wasm.ValType{i32, i32}, []wasm.ValType{i32})},                      // 5
		{"current_receiver", sig(nil, []wasm.ValType{i64})},                                      // 6
		{"tapos_block_num", sig(nil, []wasm.ValType{i32})},                                       // 7
		{"memset", sig([]wasm.ValType{i32, i32, i32}, []wasm.ValType{i32})},                      // 8
		{"memcpy", sig([]wasm.ValType{i32, i32, i32}, []wasm.ValType{i32})},                      // 9
		{"eosio_assert", sig([]wasm.ValType{i32, i32}, nil)},                                     // 10
	}
	for _, imp := range imports {
		m.Imports = append(m.Imports, wasm.Import{Module: "env", Name: imp.name, Kind: wasm.ExternalFunc, TypeIndex: imp.ti})
	}
	tab := eos.MustName("rows")
	applyTI := sig([]wasm.ValType{i64, i64, i64}, nil)
	m.Funcs = []uint32{applyTI}
	m.Memories = []wasm.MemType{{Limits: wasm.Limits{Min: 1}}}
	m.Data = []wasm.DataSegment{{Offset: []wasm.Instr{wasm.I32Const(64)}, Data: []byte("hi!")}}

	body := []wasm.Instr{
		// prints_l("hi!", 3)
		wasm.I32Const(64), wasm.I32Const(3), wasm.Call(0),
		// printi(tapos_block_num)
		wasm.Call(7), wasm.Op0(wasm.OpI64ExtendI32U), wasm.Call(1),
		// memset(128, 0xAB, 8); memcpy(136, 128, 8)
		wasm.I32Const(128), wasm.I32Const(0xAB), wasm.I32Const(8), wasm.Call(8), wasm.Drop(),
		wasm.I32Const(136), wasm.I32Const(128), wasm.I32Const(8), wasm.Call(9), wasm.Drop(),
		// db_store(scope=receiver, table, payer=receiver, id=11, data=136, len=8)
		wasm.Call(6), i64Name2(tab), wasm.Call(6), wasm.I64Const(11),
		wasm.I32Const(136), wasm.I32Const(8), wasm.Call(2), wasm.Drop(),
		// db_store id=22 from the same buffer
		wasm.Call(6), i64Name2(tab), wasm.Call(6), wasm.I64Const(22),
		wasm.I32Const(136), wasm.I32Const(8), wasm.Call(2), wasm.Drop(),
		// it = db_find(receiver, receiver, table, 11); assert(it >= 0)
		wasm.Call(6), wasm.Call(6), i64Name2(tab), wasm.I64Const(11), wasm.Call(3),
		wasm.LocalTee(3),
		wasm.I32Const(0), wasm.Op0(wasm.OpI32GeS), wasm.I32Const(64), wasm.Call(10),
		// n = db_get(it, 256, 8); assert(n == 8)
		wasm.LocalGet(3), wasm.I32Const(256), wasm.I32Const(8), wasm.Call(4),
		wasm.I32Const(8), wasm.Op0(wasm.OpI32Eq), wasm.I32Const(64), wasm.Call(10),
		// assert(mem[256] == 0xAB)
		wasm.I32Const(256), wasm.Load(wasm.OpI32Load8U, 0),
		wasm.I32Const(0xAB), wasm.Op0(wasm.OpI32Eq), wasm.I32Const(64), wasm.Call(10),
		// next = db_next(it, 512); (writes pk 22 to mem[512])
		wasm.LocalGet(3), wasm.I32Const(512), wasm.Call(5),
		wasm.I32Const(0), wasm.Op0(wasm.OpI32GeS), wasm.I32Const(64), wasm.Call(10),
		wasm.I32Const(512), wasm.Load(wasm.OpI64Load, 0),
		wasm.I64Const(22), wasm.Op0(wasm.OpI64Eq), wasm.I32Const(64), wasm.Call(10),
		wasm.End(),
	}
	m.Code = []wasm.Code{{
		Locals: []wasm.LocalDecl{{Count: 1, Type: wasm.I32}},
		Body:   body,
	}}
	m.Exports = []wasm.Export{{Name: "apply", Kind: wasm.ExternalFunc, Index: 11}}
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("host API module invalid: %v", err)
	}
	return m
}

func i64Name2(n eos.Name) wasm.Instr { return wasm.I64Const(int64(uint64(n))) }

func TestHostAPISurface(t *testing.T) {
	bc := New()
	m := hostAPIModule(t)
	ctr := eos.MustName("apitest")
	if err := bc.DeployModule(ctr, m, nil, nil); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: ctr, Name: eos.MustName("go"),
		Authorization: auth(alice),
	}}})
	if rcpt.Err != nil {
		t.Fatalf("apply failed: %v\nconsole: %s", rcpt.Err, rcpt.Console)
	}
	if !strings.HasPrefix(rcpt.Console, "hi!") {
		t.Errorf("console = %q, want hi! prefix", rcpt.Console)
	}
	// printi of tapos_block_num follows the greeting.
	if !strings.Contains(rcpt.Console, "1000") {
		t.Errorf("console missing tapos output: %q", rcpt.Console)
	}
	// The DB writes persisted.
	if n := bc.DB().Rows(ctr, ctr, eos.MustName("rows")); n != 2 {
		t.Errorf("rows = %d, want 2", n)
	}
	row, ok := bc.DB().Get(ctr, ctr, eos.MustName("rows"), 11)
	if !ok || len(row) != 8 || row[0] != 0xAB {
		t.Errorf("row 11 = %x %v", row, ok)
	}
	// DB ops were recorded for the DBG.
	var writes, reads int
	for _, op := range rcpt.DBOps {
		if op.Kind == DBWrite {
			writes++
		} else {
			reads++
		}
	}
	if writes < 2 || reads < 1 {
		t.Errorf("dbops writes=%d reads=%d", writes, reads)
	}
}
