package chain

import (
	"errors"
	"fmt"

	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/wasm"
	"repro/internal/wasm/exec"
)

// PermissionLevel is an (actor, permission) authorization pair.
type PermissionLevel struct {
	Actor      eos.Name
	Permission eos.Name
}

// Action is one action of a transaction.
type Action struct {
	Account       eos.Name // the contract the action is addressed to
	Name          eos.Name
	Authorization []PermissionLevel
	Data          []byte
}

// Transaction is an ordered list of actions executed atomically.
type Transaction struct {
	Actions []Action
}

// ErrAssert is the failure produced by eosio_assert. It deliberately
// carries no failure class: assertion failures are fuzzing signal, not
// infrastructure faults.
var ErrAssert = errors.New("eosio_assert failed") //wasai:rawerr

// AssertError carries the contract-supplied assertion message.
type AssertError struct {
	Msg string
}

// Error implements error.
func (e *AssertError) Error() string { return fmt.Sprintf("eosio_assert: %s", e.Msg) }

// Is makes AssertError match ErrAssert.
func (e *AssertError) Is(target error) bool { return target == ErrAssert }

// DBOpKind distinguishes reads from writes for the DBG (paper §3.3.2).
type DBOpKind byte

// Database operation kinds.
const (
	DBRead DBOpKind = iota + 1
	DBWrite
)

// DBOp records one database access: the pair ⟨read|write, tb⟩ of §3.3.2,
// extended with the primary key for the fine-grained dependency mode the
// paper lists as future work ("parse the database index").
type DBOp struct {
	Contract eos.Name
	Action   eos.Name
	Kind     DBOpKind
	Table    eos.Name
	Key      uint64
}

// ExecutedAction records one apply in a transaction receipt.
type ExecutedAction struct {
	Receiver eos.Name
	Code     eos.Name // the "code" parameter of apply(): the addressed contract
	Action   eos.Name
	// Notified reports whether this apply was a notification (receiver != code).
	Notified bool
}

// Receipt summarizes one executed (or reverted) transaction.
type Receipt struct {
	Executed []ExecutedAction
	Console  string
	Traces   []trace.Trace
	DBOps    []DBOp
	// InlineSent lists inline actions dispatched during execution.
	InlineSent []Action
	// DeferredSent lists deferred transactions scheduled during execution.
	DeferredSent []Transaction
	// Err is non-nil when the transaction reverted; all state changes were
	// rolled back but the traces of the partial execution are retained
	// (WASAI analyzes reverted runs too).
	Err error
}

// Reverted reports whether the transaction failed and was rolled back.
func (r *Receipt) Reverted() bool { return r.Err != nil }

// NativeContract is a contract implemented in Go rather than Wasm (system
// contracts and the adversary-oracle agent contracts).
type NativeContract interface {
	// ApplyNative handles apply(receiver=ctx.Receiver, code, action).
	ApplyNative(ctx *Context, code, action eos.Name) error
}

// Account is one chain account.
type Account struct {
	Name eos.Name

	// Wasm contract (nil when the account has no code or native code).
	Module *wasm.Module
	ABI    *abi.ABI
	// Sites is the instrumentation site table when the deployed binary is
	// instrumented (nil otherwise); hooks are silent without it.
	Sites *instrument.SiteTable

	// Native contract (nil for Wasm accounts).
	Native NativeContract
}

// HasCode reports whether the account has any contract deployed.
func (a *Account) HasCode() bool { return a.Module != nil || a.Native != nil }

// Blockchain is a single-node EOSIO chain simulator.
type Blockchain struct {
	accounts map[eos.Name]*Account
	db       *Database

	// Collector receives traces from instrumented contracts. Nil disables
	// collection.
	Collector *trace.Collector

	blockNum    uint32
	blockPrefix uint32
	timeUs      uint64 // microseconds since epoch

	deferred []Transaction

	// MaxInlineDepth bounds inline-action recursion, as EOSIO does.
	MaxInlineDepth int
	// Fuel is the per-action instruction budget for Wasm execution.
	Fuel int64
	// FastVM selects the decoded-IR execution engine (exec.NewFastVM).
	// Behaviour is identical to the tree-walking interpreter; only
	// throughput changes.
	FastVM bool
	// Faults, when non-nil, injects the planned fault ahead of host-API
	// dispatch (see internal/faultinject). Chains execute transactions
	// single-threaded, so the host-call order — and therefore which call
	// the fault lands on — is deterministic.
	Faults *faultinject.Injector
	// HoldBlocks freezes the block head: PushTransaction skips the
	// post-transaction advanceBlock, so block number, time and tapos
	// prefix stay constant across transactions. The multi-transaction
	// scenario driver uses this to compare permuted transaction sequences
	// under identical block state — otherwise every tapos read would
	// differ between the two orders and mask genuine ordering dependence.
	HoldBlocks bool

	backend Backend
}

// New returns an EOSIO chain with the eosio.token system contract
// deployed and no other accounts.
func New() *Blockchain { return NewWithBackend(EOSIO()) }

// NewWithBackend returns a chain running the given personality: the
// backend supplies the host-API surface and bootstraps its system
// contracts; everything else (dispatch, database, rollback, traces) is
// personality-independent.
func NewWithBackend(b Backend) *Blockchain {
	bc := &Blockchain{
		accounts:       map[eos.Name]*Account{},
		db:             NewDatabase(),
		blockNum:       1000,
		blockPrefix:    0x5eed5eed,
		timeUs:         1_577_836_800_000_000, // 2020-01-01T00:00:00Z
		MaxInlineDepth: 16,
		Fuel:           exec.DefaultFuel,
		backend:        b,
	}
	b.Bootstrap(bc)
	return bc
}

// Backend returns the chain's personality.
func (bc *Blockchain) Backend() Backend { return bc.backend }

// DB exposes the database (tests and detectors inspect it directly).
func (bc *Blockchain) DB() *Database { return bc.db }

// CreateAccount registers an account with no code.
func (bc *Blockchain) CreateAccount(name eos.Name) *Account {
	if a, ok := bc.accounts[name]; ok {
		return a
	}
	a := &Account{Name: name}
	bc.accounts[name] = a
	return a
}

// Account returns the named account, or nil.
func (bc *Blockchain) Account(name eos.Name) *Account { return bc.accounts[name] }

// DeployWasm installs a Wasm contract with its ABI on an account, creating
// the account if necessary. The module is instantiated once immediately to
// surface link errors at deploy time, as Nodeos does.
func (bc *Blockchain) DeployWasm(name eos.Name, bin []byte, contractABI *abi.ABI) error {
	m, err := wasm.Decode(bin)
	if err != nil {
		return fmt.Errorf("chain: deploy %s: %w", name, err)
	}
	if err := wasm.Validate(m); err != nil {
		return fmt.Errorf("chain: deploy %s: %w", name, err)
	}
	a := bc.CreateAccount(name)
	if _, err := exec.Instantiate(m, bc.resolverFor(nil)); err != nil {
		return fmt.Errorf("chain: deploy %s: link: %w", name, err)
	}
	sites, err := instrument.SitesFromModule(m)
	if err != nil {
		return fmt.Errorf("chain: deploy %s: %w", name, err)
	}
	a.Module = m
	a.ABI = contractABI
	a.Sites = sites
	a.Native = nil
	return nil
}

// DeployModule installs an already-decoded module (skips re-decoding; used
// by the fuzzer, which instruments modules in memory).
func (bc *Blockchain) DeployModule(name eos.Name, m *wasm.Module, contractABI *abi.ABI, sites *instrument.SiteTable) error {
	a := bc.CreateAccount(name)
	if _, err := exec.Instantiate(m, bc.resolverFor(nil)); err != nil {
		return fmt.Errorf("chain: deploy %s: link: %w", name, err)
	}
	a.Module = m
	a.ABI = contractABI
	a.Sites = sites
	a.Native = nil
	return nil
}

// DeployNative installs a Go-implemented contract on an account.
func (bc *Blockchain) DeployNative(name eos.Name, n NativeContract, contractABI *abi.ABI) {
	a := bc.CreateAccount(name)
	a.Native = n
	a.ABI = contractABI
	a.Module = nil
}

// UnDeploy removes the contract from an account (the paper's "abandoned"
// contracts have their latest versions replaced with empty files).
func (bc *Blockchain) UnDeploy(name eos.Name) {
	if a, ok := bc.accounts[name]; ok {
		a.Module = nil
		a.Native = nil
	}
}

// TimeUs returns the current chain time in microseconds.
func (bc *Blockchain) TimeUs() uint64 { return bc.timeUs }

// BlockNum returns the current head block number.
func (bc *Blockchain) BlockNum() uint32 { return bc.blockNum }

// TaposBlockNum mirrors the tapos_block_num intrinsic.
func (bc *Blockchain) TaposBlockNum() uint32 { return bc.blockNum & 0xffff }

// TaposBlockPrefix mirrors the tapos_block_prefix intrinsic.
func (bc *Blockchain) TaposBlockPrefix() uint32 { return bc.blockPrefix }

// advanceBlock moves the chain head forward one block.
func (bc *Blockchain) advanceBlock() {
	bc.blockNum++
	bc.timeUs += 500_000 // 500ms block interval
	// Deterministic pseudo-random-looking prefix evolution.
	bc.blockPrefix = bc.blockPrefix*1664525 + 1013904223
}

// PushTransaction executes tx atomically: on any failure all state changes
// are rolled back and the receipt carries the error. Deferred transactions
// scheduled by tx are executed afterwards, each in its own transaction
// context (their failure does not revert tx — the Rollback-safe pattern of
// paper §2.3.5).
func (bc *Blockchain) PushTransaction(tx Transaction) *Receipt {
	rcpt := bc.runTransaction(tx)
	// Run scheduled deferred transactions (only when the parent committed).
	if rcpt.Err == nil {
		for len(bc.deferred) > 0 {
			d := bc.deferred[0]
			bc.deferred = bc.deferred[1:]
			sub := bc.runTransaction(d)
			rcpt.Executed = append(rcpt.Executed, sub.Executed...)
			rcpt.Traces = append(rcpt.Traces, sub.Traces...)
			rcpt.DBOps = append(rcpt.DBOps, sub.DBOps...)
			rcpt.Console += sub.Console
		}
	} else {
		bc.deferred = nil
	}
	if !bc.HoldBlocks {
		bc.advanceBlock()
	}
	return rcpt
}

func (bc *Blockchain) runTransaction(tx Transaction) *Receipt {
	snapshot := bc.db.Snapshot()
	deferredMark := len(bc.deferred)
	rcpt := &Receipt{}
	txctx := &txContext{chain: bc, receipt: rcpt}
	for i := range tx.Actions {
		if err := bc.applyActionTree(txctx, tx.Actions[i], 0); err != nil {
			rcpt.Err = fmt.Errorf("action %d (%s@%s): %w", i, tx.Actions[i].Name, tx.Actions[i].Account, err)
			bc.db.Restore(snapshot)
			// Discard only the deferred transactions this tx scheduled.
			bc.deferred = bc.deferred[:deferredMark]
			break
		}
	}
	if bc.Collector != nil {
		rcpt.Traces = append(rcpt.Traces, bc.Collector.TakeTraces()...)
	}
	return rcpt
}

// txContext carries per-transaction execution state.
type txContext struct {
	chain   *Blockchain
	receipt *Receipt
}

// applyActionTree executes one action: the primary apply on the addressed
// contract, then notification applies, then inline actions (depth-first),
// matching EOSIO's dispatch order.
func (bc *Blockchain) applyActionTree(txctx *txContext, act Action, depth int) error {
	if depth > bc.MaxInlineDepth {
		return failure.Newf(failure.Trap, "chain: inline action depth %d exceeds limit", depth)
	}
	// Primary apply: receiver == code == act.Account.
	notified, inline, err := bc.applyOne(txctx, act.Account, act.Account, act, depth)
	if err != nil {
		return err
	}
	// Notification applies (receiver varies, code stays).
	seen := map[eos.Name]bool{act.Account: true}
	for i := 0; i < len(notified); i++ {
		r := notified[i]
		if seen[r] {
			continue
		}
		seen[r] = true
		moreNotified, moreInline, err := bc.applyOne(txctx, r, act.Account, act, depth)
		if err != nil {
			return err
		}
		notified = append(notified, moreNotified...)
		inline = append(inline, moreInline...)
	}
	// Inline actions, depth-first.
	for _, in := range inline {
		txctx.receipt.InlineSent = append(txctx.receipt.InlineSent, in)
		if err := bc.applyActionTree(txctx, in, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// applyOne runs a single apply(receiver, code, action) and returns the
// accounts to notify and the inline actions dispatched.
func (bc *Blockchain) applyOne(txctx *txContext, receiver, code eos.Name, act Action, depth int) (notified []eos.Name, inline []Action, err error) {
	acct, ok := bc.accounts[receiver]
	if !ok {
		if receiver == code {
			return nil, nil, failure.Newf(failure.Trap, "chain: unknown account %s", receiver)
		}
		return nil, nil, nil // notifying a non-existent account is a no-op
	}
	txctx.receipt.Executed = append(txctx.receipt.Executed, ExecutedAction{
		Receiver: receiver, Code: code, Action: act.Name, Notified: receiver != code,
	})
	if !acct.HasCode() {
		// Accounts without code accept actions and notifications as no-ops
		// (plain wallet accounts), but the receipt still records them.
		return nil, nil, nil
	}

	ctx := &Context{
		chain:    bc,
		tx:       txctx,
		Receiver: receiver,
		Code:     code,
		Action:   act.Name,
		Data:     act.Data,
		Auth:     act.Authorization,
		iters:    NewIterCache(bc.db),
		depth:    depth,
	}

	if acct.Native != nil {
		err = acct.Native.ApplyNative(ctx, code, act.Name)
	} else {
		err = bc.applyWasm(ctx, acct)
	}

	// Export this apply's trace even when it failed: WASAI instruments the
	// contract itself, and a reverted execution still shows the path taken.
	if bc.Collector != nil {
		bc.Collector.Finalize(receiver, act.Name)
	}
	txctx.receipt.Console += ctx.console.String()
	txctx.receipt.DBOps = append(txctx.receipt.DBOps, ctx.dbOps...)
	if err != nil {
		return nil, nil, err
	}
	txctx.receipt.DeferredSent = append(txctx.receipt.DeferredSent, ctx.deferred...)
	bc.deferred = append(bc.deferred, ctx.deferred...)
	return ctx.notified, ctx.inline, nil
}

// applyWasm instantiates the account's module and invokes its apply entry.
func (bc *Blockchain) applyWasm(ctx *Context, acct *Account) error {
	inst, err := exec.Instantiate(acct.Module, bc.resolverFor(ctx))
	if err != nil {
		return fmt.Errorf("chain: instantiate %s: %w", acct.Name, err)
	}
	vm := exec.NewVM(inst)
	if bc.FastVM {
		vm = exec.NewFastVM(inst)
	}
	vm.SetFuel(bc.Fuel)
	vm.Context = ctx
	ctx.vm = vm
	_, err = vm.Invoke("apply", uint64(ctx.Receiver), uint64(ctx.Code), uint64(ctx.Action))
	if err != nil {
		return err
	}
	return nil
}
