package chain

import (
	"encoding/binary"
	"fmt"

	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/wasm/exec"
)

// eosioBackend is the default chain personality: the EOSIO host-API
// surface (require_auth / send_inline / db_*_i64 and friends) with the
// eosio.token system contract. It is stateless — all chain state lives on
// the Blockchain — so one value can serve any number of chains.
type eosioBackend struct{}

// EOSIO returns the default EOSIO backend.
func EOSIO() Backend { return eosioBackend{} }

// Name implements Backend.
func (eosioBackend) Name() string { return "eosio" }

// Bootstrap implements Backend: deploy the eosio.token system contract.
func (eosioBackend) Bootstrap(bc *Blockchain) {
	bc.accounts[eos.TokenContract] = &Account{
		Name:   eos.TokenContract,
		Native: &TokenContract{Issuer: eos.TokenContract, Sym: eos.EOSSymbol},
		ABI:    abi.TransferABI(),
	}
}

// Classification implements Backend with the package-level EOSIO sets.
func (eosioBackend) Classification() APIClassification {
	return APIClassification{
		Permission: PermissionAPIs,
		Effect:     EffectAPIs,
		Blockinfo:  BlockinfoAPIs,
	}
}

// HostEnv implements Backend: the EOSIO "env" import module. Every
// closure resolves the apply context through ctxOf(vm), so the module
// depends only on the chain, never on one apply.
func (b eosioBackend) HostEnv(bc *Blockchain) exec.HostModule {
	env := exec.HostModule{
		APIRequireAuth: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, ctxOf(vm).RequireAuth(eos.Name(args[0]))
		},
		APIRequireAuth2: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, ctxOf(vm).RequireAuth(eos.Name(args[0]))
		},
		APIHasAuth: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			if ctxOf(vm).HasAuth(eos.Name(args[0])) {
				return []uint64{1}, nil
			}
			return []uint64{0}, nil
		},
		APIRequireRecipient: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			ctxOf(vm).RequireRecipient(eos.Name(args[0]))
			return nil, nil
		},
		APIIsAccount: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			if ctxOf(vm).chain.Account(eos.Name(args[0])) != nil {
				return []uint64{1}, nil
			}
			return []uint64{0}, nil
		},
		APICurrentReceiver: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return []uint64{uint64(ctxOf(vm).Receiver)}, nil
		},
		APIEosioAssert: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			if uint32(args[0]) != 0 {
				return nil, nil
			}
			return nil, &AssertError{Msg: readCStr(vm, uint32(args[1]))}
		},
		APIReadActionData: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			ctx := ctxOf(vm)
			n := int(uint32(args[1]))
			if n > len(ctx.Data) {
				n = len(ctx.Data)
			}
			if err := vm.Instance().WriteMemory(uint32(args[0]), ctx.Data[:n]); err != nil {
				return nil, err
			}
			return []uint64{uint64(uint32(n))}, nil
		},
		APIActionDataSize: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return []uint64{uint64(uint32(len(ctxOf(vm).Data)))}, nil
		},
		APISendInline: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			p, err := vm.Instance().ReadMemory(uint32(args[0]), uint32(args[1]))
			if err != nil {
				return nil, err
			}
			act, err := UnpackAction(p)
			if err != nil {
				return nil, fmt.Errorf("send_inline: %w", err)
			}
			ctxOf(vm).SendInline(act)
			return nil, nil
		},
		APISendDeferred: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			// Simplified signature: (payer i64, ptr i32, len i32).
			p, err := vm.Instance().ReadMemory(uint32(args[1]), uint32(args[2]))
			if err != nil {
				return nil, err
			}
			act, err := UnpackAction(p)
			if err != nil {
				return nil, fmt.Errorf("send_deferred: %w", err)
			}
			ctxOf(vm).SendDeferred(Transaction{Actions: []Action{act}})
			return nil, nil
		},
		APITaposBlockNum: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return []uint64{uint64(ctxOf(vm).chain.TaposBlockNum())}, nil
		},
		APITaposBlockPrefix: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return []uint64{uint64(ctxOf(vm).chain.TaposBlockPrefix())}, nil
		},
		APICurrentTime: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return []uint64{ctxOf(vm).chain.TimeUs()}, nil
		},
		APIPrints: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			ctxOf(vm).Print(readCStr(vm, uint32(args[0])))
			return nil, nil
		},
		APIPrintsL: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			p, err := vm.Instance().ReadMemory(uint32(args[0]), uint32(args[1]))
			if err != nil {
				return nil, err
			}
			ctxOf(vm).Print(string(p))
			return nil, nil
		},
		APIPrintI: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			ctxOf(vm).Print(fmt.Sprintf("%d", int64(args[0])))
			return nil, nil
		},
		APIPrintN: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			ctxOf(vm).Print(eos.Name(args[0]).String())
			return nil, nil
		},
		APIMemcpy: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			dst, src, n := uint32(args[0]), uint32(args[1]), uint32(args[2])
			p, err := vm.Instance().ReadMemory(src, n)
			if err != nil {
				return nil, err
			}
			if err := vm.Instance().WriteMemory(dst, p); err != nil {
				return nil, err
			}
			return []uint64{uint64(dst)}, nil
		},
		APIMemset: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			dst, val, n := uint32(args[0]), byte(args[1]), uint32(args[2])
			p := make([]byte, n)
			for i := range p {
				p[i] = val
			}
			if err := vm.Instance().WriteMemory(dst, p); err != nil {
				return nil, err
			}
			return []uint64{uint64(dst)}, nil
		},
		APIAbort: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, &AssertError{Msg: "abort() called"}
		},
	}
	b.addDBAPIs(env)
	return env
}

func (eosioBackend) addDBAPIs(env exec.HostModule) {
	env[APIDBStore] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		scope, tab := eos.Name(args[0]), eos.Name(args[1])
		id := args[3]
		p, err := vm.Instance().ReadMemory(uint32(args[4]), uint32(args[5]))
		if err != nil {
			return nil, err
		}
		ctx.RecordDBOpKey(DBWrite, tab, id)
		it := ctx.iters.Store(scope, tab, ctx.Receiver, id, p)
		return []uint64{uint64(uint32(it))}, nil
	}
	env[APIDBFind] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		code, scope, tab, id := eos.Name(args[0]), eos.Name(args[1]), eos.Name(args[2]), args[3]
		ctx.RecordDBOpKey(DBRead, tab, id)
		return []uint64{uint64(uint32(ctx.iters.Find(code, scope, tab, id)))}, nil
	}
	env[APIDBGet] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		row, err := ctx.iters.Get(int32(uint32(args[0])))
		if err != nil {
			return nil, err
		}
		n := int(uint32(args[2]))
		if n == 0 {
			return []uint64{uint64(uint32(len(row)))}, nil
		}
		if n > len(row) {
			n = len(row)
		}
		if err := vm.Instance().WriteMemory(uint32(args[1]), row[:n]); err != nil {
			return nil, err
		}
		return []uint64{uint64(uint32(n))}, nil
	}
	env[APIDBUpdate] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		p, err := vm.Instance().ReadMemory(uint32(args[2]), uint32(args[3]))
		if err != nil {
			return nil, err
		}
		handle := int32(uint32(args[0]))
		if r, ok := ctx.iters.ref(handle); ok {
			ctx.RecordDBOpKey(DBWrite, r.key.Table, r.id)
		} else {
			ctx.RecordDBOp(DBWrite, eos.Name(0))
		}
		return nil, ctx.iters.Update(handle, p)
	}
	env[APIDBRemove] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		handle := int32(uint32(args[0]))
		if r, ok := ctx.iters.ref(handle); ok {
			ctx.RecordDBOpKey(DBWrite, r.key.Table, r.id)
		} else {
			ctx.RecordDBOp(DBWrite, eos.Name(0))
		}
		return nil, ctx.iters.Remove(handle)
	}
	env[APIDBNext] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		it, pk := ctx.iters.Next(int32(uint32(args[0])))
		if ptr := uint32(args[1]); ptr != 0 && it >= 0 {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], pk)
			if err := vm.Instance().WriteMemory(ptr, buf[:]); err != nil {
				return nil, err
			}
		}
		return []uint64{uint64(uint32(it))}, nil
	}
	env[APIDBPrevious] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		it, pk := ctx.iters.Previous(int32(uint32(args[0])))
		if ptr := uint32(args[1]); ptr != 0 && it >= 0 {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], pk)
			if err := vm.Instance().WriteMemory(ptr, buf[:]); err != nil {
				return nil, err
			}
		}
		return []uint64{uint64(uint32(it))}, nil
	}
	env[APIDBLowerbound] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		code, scope, tab, id := eos.Name(args[0]), eos.Name(args[1]), eos.Name(args[2]), args[3]
		ctx.RecordDBOp(DBRead, tab)
		return []uint64{uint64(uint32(ctx.iters.LowerBound(code, scope, tab, id)))}, nil
	}
	env[APIDBEnd] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
		ctx := ctxOf(vm)
		code, scope, tab := eos.Name(args[0]), eos.Name(args[1]), eos.Name(args[2])
		ctx.RecordDBOp(DBRead, tab)
		return []uint64{uint64(uint32(ctx.iters.End(code, scope, tab)))}, nil
	}
}
