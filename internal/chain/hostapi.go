package chain

import (
	"encoding/binary"

	"repro/internal/eos"
	"repro/internal/failure"
	"repro/internal/instrument"
	"repro/internal/trace"
	"repro/internal/wasm/exec"
)

// Host API intrinsic names (the subset of the EOSIO C API the paper's
// detectors reason about, plus the memory/print helpers contracts need).
const (
	APIRequireAuth      = "require_auth"
	APIRequireAuth2     = "require_auth2"
	APIHasAuth          = "has_auth"
	APIRequireRecipient = "require_recipient"
	APIIsAccount        = "is_account"
	APICurrentReceiver  = "current_receiver"
	APIEosioAssert      = "eosio_assert"
	APIReadActionData   = "read_action_data"
	APIActionDataSize   = "action_data_size"
	APISendInline       = "send_inline"
	APISendDeferred     = "send_deferred"
	APITaposBlockNum    = "tapos_block_num"
	APITaposBlockPrefix = "tapos_block_prefix"
	APICurrentTime      = "current_time"
	APIDBStore          = "db_store_i64"
	APIDBFind           = "db_find_i64"
	APIDBGet            = "db_get_i64"
	APIDBUpdate         = "db_update_i64"
	APIDBRemove         = "db_remove_i64"
	APIDBNext           = "db_next_i64"
	APIDBPrevious       = "db_previous_i64"
	APIDBLowerbound     = "db_lowerbound_i64"
	APIDBEnd            = "db_end_i64"
	APIPrints           = "prints"
	APIPrintsL          = "prints_l"
	APIPrintI           = "printi"
	APIPrintN           = "printn"
	APIMemcpy           = "memcpy"
	APIMemset           = "memset"
	APIAbort            = "abort"
)

// PermissionAPIs is the set of authorization-checking intrinsics (paper §2.2).
var PermissionAPIs = map[string]bool{
	APIRequireAuth:  true,
	APIRequireAuth2: true,
	APIHasAuth:      true,
}

// EffectAPIs is the set of side-effect intrinsics the MissAuth oracle guards.
var EffectAPIs = map[string]bool{
	APISendInline:   true,
	APISendDeferred: true,
	APIDBStore:      true,
	APIDBUpdate:     true,
	APIDBRemove:     true,
}

// BlockinfoAPIs is the set of blockchain-state intrinsics the BlockinfoDep
// oracle flags.
var BlockinfoAPIs = map[string]bool{
	APITaposBlockNum:    true,
	APITaposBlockPrefix: true,
}

func ctxOf(vm *exec.VM) *Context {
	ctx, _ := vm.Context.(*Context)
	return ctx
}

// readCStr reads a NUL-terminated string from instance memory (bounded).
func readCStr(vm *exec.VM, ptr uint32) string {
	mem := vm.Instance().Memory()
	if int(ptr) >= len(mem) {
		return ""
	}
	end := int(ptr)
	for end < len(mem) && mem[end] != 0 && end-int(ptr) < 256 {
		end++
	}
	return string(mem[ptr:end])
}

// resolverFor builds the import resolver for executing a contract under ctx.
// ctx may be nil at deploy-time link checking. The "env" intrinsic surface
// comes from the chain's backend; the wasai.* instrumentation hooks and the
// fault injector stay at the chain layer — they are pipeline machinery, not
// personality semantics, so every backend gets them for free.
func (bc *Blockchain) resolverFor(ctx *Context) exec.Resolver {
	env := bc.backend.HostEnv(bc)
	if bc.Faults != nil {
		// Interpose the fault injector ahead of every env intrinsic. The
		// wasai.* hook module is left unwrapped: instrumentation callbacks
		// are bookkeeping, not chain semantics, and faulting them would
		// perturb coverage rather than model a host failure.
		for name, fn := range env {
			name, fn := name, fn
			env[name] = func(vm *exec.VM, args []uint64) ([]uint64, error) {
				if err := bc.Faults.HostCall(name); err != nil {
					return nil, err
				}
				return fn(vm, args)
			}
		}
	}
	return exec.Resolver{
		"env":                 env,
		instrument.HookModule: bc.hookModule(),
	}
}

// hookModule implements the wasai.* logging imports the instrumenter
// injects. Events reference original-module coordinates via the deployed
// account's site table.
func (bc *Blockchain) hookModule() exec.HostModule {
	emit := func(vm *exec.VM, kind trace.HookKind, site uint32, operand uint64) error {
		if bc.Collector == nil {
			return nil
		}
		ctx := ctxOf(vm)
		acct := bc.Account(ctx.Receiver)
		if acct == nil || acct.Sites == nil {
			return nil
		}
		s, ok := acct.Sites.Lookup(site)
		if !ok {
			return failure.Newf(failure.Trap, "chain: unknown hook site %d in %s", site, ctx.Receiver)
		}
		bc.Collector.Emit(trace.Event{
			Kind: kind, Func: s.Func, PC: int(s.PC), Op: s.Op, Operand: operand,
		})
		return nil
	}
	emitLabel := func(vm *exec.VM, kind trace.HookKind, fn uint32) {
		if bc.Collector == nil {
			return
		}
		ctx := ctxOf(vm)
		acct := bc.Account(ctx.Receiver)
		if acct == nil || acct.Sites == nil {
			return
		}
		bc.Collector.Emit(trace.Event{Kind: kind, Func: fn})
	}
	return exec.HostModule{
		instrument.HookLogSite: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookInstr, uint32(args[0]), 0)
		},
		instrument.HookLogCond: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCond, uint32(args[0]), uint64(uint32(args[1])))
		},
		instrument.HookLogTable: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookBrTable, uint32(args[0]), uint64(uint32(args[1])))
		},
		instrument.HookLogMem: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookMem, uint32(args[0]), uint64(uint32(args[1])))
		},
		instrument.HookLogCmp: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			// Two operands: encode as two events (a then b) at the same site.
			if err := emit(vm, trace.HookCmp, uint32(args[0]), args[1]); err != nil {
				return nil, err
			}
			return nil, emit(vm, trace.HookCmp, uint32(args[0]), args[2])
		},
		instrument.HookLogCall: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			site, callee := uint32(args[0]), uint64(uint32(args[1]))
			if err := emit(vm, trace.HookCallPre, site, callee); err != nil {
				return nil, err
			}
			return nil, emit(vm, trace.HookCall, site, callee)
		},
		instrument.HookLogCallI: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			site, tblIdx := uint32(args[0]), uint32(args[1])
			if err := emit(vm, trace.HookCallPre, site, uint64(tblIdx)); err != nil {
				return nil, err
			}
			ctx := ctxOf(vm)
			acct := bc.Account(ctx.Receiver)
			if acct == nil || acct.Sites == nil {
				return nil, nil
			}
			instrumented, ok := vm.Instance().TableGet(tblIdx)
			if !ok {
				return nil, nil // the call_indirect itself will trap
			}
			orig, ok := acct.Sites.OrigFunc(instrumented)
			if !ok {
				return nil, nil
			}
			return nil, emit(vm, trace.HookCall, site, uint64(orig))
		},
		instrument.HookLogRetV: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCallPost, uint32(args[0]), 0)
		},
		instrument.HookLogRetI: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCallPost, uint32(args[0]), uint64(uint32(args[1])))
		},
		instrument.HookLogRetL: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCallPost, uint32(args[0]), args[1])
		},
		instrument.HookLogRetF: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCallPost, uint32(args[0]), args[1])
		},
		instrument.HookLogRetD: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			return nil, emit(vm, trace.HookCallPost, uint32(args[0]), args[1])
		},
		instrument.HookLogBegin: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitLabel(vm, trace.HookFuncBegin, uint32(args[0]))
			return nil, nil
		},
		instrument.HookLogEnd: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitLabel(vm, trace.HookFuncEnd, uint32(args[0]))
			return nil, nil
		},
		instrument.HookLogParmI: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitParam(bc, vm, uint32(args[0]), uint64(uint32(args[1])))
			return nil, nil
		},
		instrument.HookLogParmL: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitParam(bc, vm, uint32(args[0]), args[1])
			return nil, nil
		},
		instrument.HookLogParmF: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitParam(bc, vm, uint32(args[0]), args[1])
			return nil, nil
		},
		instrument.HookLogParmD: func(vm *exec.VM, args []uint64) ([]uint64, error) {
			emitParam(bc, vm, uint32(args[0]), args[1])
			return nil, nil
		},
	}
}

func emitParam(bc *Blockchain, vm *exec.VM, fn uint32, v uint64) {
	if bc.Collector == nil {
		return
	}
	ctx := ctxOf(vm)
	acct := bc.Account(ctx.Receiver)
	if acct == nil || acct.Sites == nil {
		return
	}
	bc.Collector.Emit(trace.Event{Kind: trace.HookParam, Func: fn, Operand: v})
}

// PackAction serializes an action for send_inline / send_deferred. The
// layout is fixed-width little-endian: account(8) name(8) nauth(4)
// {actor(8) permission(8)}* dlen(4) data. (The real chain uses varuint
// framing; the fixed layout keeps generated contracts simple while
// exercising the same code paths.)
func PackAction(act Action) []byte {
	buf := make([]byte, 0, 24+16*len(act.Authorization)+len(act.Data))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(act.Account))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(act.Name))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(act.Authorization)))
	for _, pl := range act.Authorization {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pl.Actor))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pl.Permission))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(act.Data)))
	return append(buf, act.Data...)
}

// UnpackAction parses the PackAction layout.
func UnpackAction(p []byte) (Action, error) {
	if len(p) < 20 {
		return Action{}, failure.Newf(failure.Trap, "chain: packed action too short (%d bytes)", len(p))
	}
	act := Action{
		Account: eos.Name(binary.LittleEndian.Uint64(p[0:])),
		Name:    eos.Name(binary.LittleEndian.Uint64(p[8:])),
	}
	nauth := binary.LittleEndian.Uint32(p[16:])
	off := 20
	if nauth > 16 || len(p) < off+int(nauth)*16+4 {
		return Action{}, failure.Newf(failure.Trap, "chain: packed action truncated")
	}
	for i := uint32(0); i < nauth; i++ {
		act.Authorization = append(act.Authorization, PermissionLevel{
			Actor:      eos.Name(binary.LittleEndian.Uint64(p[off:])),
			Permission: eos.Name(binary.LittleEndian.Uint64(p[off+8:])),
		})
		off += 16
	}
	dlen := binary.LittleEndian.Uint32(p[off:])
	off += 4
	if len(p) < off+int(dlen) {
		return Action{}, failure.Newf(failure.Trap, "chain: packed action data truncated")
	}
	act.Data = append([]byte(nil), p[off:off+int(dlen)]...)
	return act, nil
}
