package chain

import "repro/internal/wasm/exec"

// APIClassification groups a backend's host intrinsics into the three sets
// the analysis layers reason about: authorization checks (the MissAuth
// oracle's guards), state-changing effects (what those guards must
// dominate), and blockchain-state reads (the BlockinfoDep oracle's
// sources). internal/scanner and internal/static consume these sets by
// name, so a backend's classification fully determines how its intrinsics
// are triaged — no oracle code mentions a concrete personality.
type APIClassification struct {
	Permission map[string]bool
	Effect     map[string]bool
	Blockinfo  map[string]bool
}

// Backend is one chain personality: the host-API surface a deployed
// contract links against, plus the system contracts the personality ships
// with. The Blockchain owns everything personality-independent —
// transaction atomicity, notification and inline/deferred dispatch, the
// key-value database, trace collection, fault injection — and delegates
// the intrinsic surface to its backend, so a second personality plugs
// into the fuzz/symbolic/scanner pipeline without touching callers.
//
// Determinism contract: HostEnv must be a pure function of (backend,
// chain) — the returned closures may read per-apply state only through
// the VM's context (ctxOf), never capture it at build time — and
// Bootstrap must deploy the same accounts in the same order on every
// chain. EOSIO() is the default personality; campaign digests are
// byte-identical to the pre-interface code by construction (the method
// bodies moved, their behaviour did not).
type Backend interface {
	// Name labels the personality (diagnostics and lint audits).
	Name() string
	// HostEnv builds the "env" import module contracts link against.
	// Called per instantiation; closures resolve the apply context from
	// the VM, so one env value serves every apply on the chain.
	HostEnv(bc *Blockchain) exec.HostModule
	// Bootstrap deploys the personality's system contracts on a fresh
	// chain (EOSIO: the eosio.token native contract).
	Bootstrap(bc *Blockchain)
	// Classification exposes the personality's API sets for the static
	// and dynamic oracle layers.
	Classification() APIClassification
}
