package chain

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/eos"
)

var (
	alice  = eos.MustName("alice")
	bob    = eos.MustName("bob")
	victim = eos.MustName("victim")
)

func auth(actor eos.Name) []PermissionLevel {
	return []PermissionLevel{{Actor: actor, Permission: eos.ActiveAuth}}
}

func transferAction(token, from, to eos.Name, quantity string, memo string) Action {
	return Action{
		Account:       token,
		Name:          eos.ActionTransfer,
		Authorization: auth(from),
		Data: EncodeTransfer(TransferArgs{
			From: from, To: to, Quantity: eos.MustAsset(quantity), Memo: memo,
		}),
	}
}

func TestTokenIssueAndTransfer(t *testing.T) {
	bc := New()
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	if err := bc.Issue(eos.TokenContract, alice, eos.MustAsset("100.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, bob, "30.0000 EOS", "hi"),
	}})
	if rcpt.Err != nil {
		t.Fatalf("transfer: %v", rcpt.Err)
	}
	if got := bc.Balance(eos.TokenContract, alice).String(); got != "70.0000 EOS" {
		t.Errorf("alice balance = %s, want 70.0000 EOS", got)
	}
	if got := bc.Balance(eos.TokenContract, bob).String(); got != "30.0000 EOS" {
		t.Errorf("bob balance = %s, want 30.0000 EOS", got)
	}
	// Both parties are notified.
	var notified []eos.Name
	for _, ex := range rcpt.Executed {
		if ex.Notified {
			notified = append(notified, ex.Receiver)
		}
	}
	if len(notified) != 2 || notified[0] != alice || notified[1] != bob {
		t.Errorf("notified = %v, want [alice bob]", notified)
	}
}

func TestTransferRequiresAuth(t *testing.T) {
	bc := New()
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	if err := bc.Issue(eos.TokenContract, alice, eos.MustAsset("10.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	act := transferAction(eos.TokenContract, alice, bob, "1.0000 EOS", "")
	act.Authorization = auth(bob) // wrong signer
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{act}})
	if rcpt.Err == nil || !errors.Is(rcpt.Err, ErrAssert) {
		t.Fatalf("want auth failure, got %v", rcpt.Err)
	}
	if got := bc.Balance(eos.TokenContract, alice).Amount; got != 100000 {
		t.Errorf("alice balance changed on reverted tx: %d", got)
	}
}

func TestTransferOverdrawnReverts(t *testing.T) {
	bc := New()
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, bob, "1.0000 EOS", ""),
	}})
	if rcpt.Err == nil || !strings.Contains(rcpt.Err.Error(), "overdrawn") {
		t.Fatalf("want overdrawn error, got %v", rcpt.Err)
	}
}

func TestTransactionAtomicRollback(t *testing.T) {
	bc := New()
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	if err := bc.Issue(eos.TokenContract, alice, eos.MustAsset("10.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	// Two actions: the first succeeds, the second fails -> both roll back.
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, bob, "5.0000 EOS", ""),
		transferAction(eos.TokenContract, alice, bob, "100.0000 EOS", ""),
	}})
	if rcpt.Err == nil {
		t.Fatal("want failure")
	}
	if got := bc.Balance(eos.TokenContract, alice).String(); got != "10.0000 EOS" {
		t.Errorf("alice balance = %s after rollback, want 10.0000 EOS", got)
	}
	if got := bc.Balance(eos.TokenContract, bob).Amount; got != 0 {
		t.Errorf("bob balance = %d after rollback, want 0", got)
	}
}

func TestFakeTokenIsDistinct(t *testing.T) {
	bc := New()
	fake := eos.MustName("fake.token")
	bc.DeployNative(fake, &TokenContract{Issuer: fake, Sym: eos.EOSSymbol}, nil)
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	if err := bc.Issue(fake, alice, eos.MustAsset("50.0000 EOS")); err != nil {
		t.Fatalf("issue fake EOS: %v", err)
	}
	// Fake EOS balance lives under the fake contract only.
	if got := bc.Balance(fake, alice).Amount; got != 500000 {
		t.Errorf("fake balance = %d, want 500000", got)
	}
	if got := bc.Balance(eos.TokenContract, alice).Amount; got != 0 {
		t.Errorf("official balance = %d, want 0", got)
	}
	// Transferring fake EOS notifies the recipient with code=fake.token.
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(fake, alice, bob, "1.0000 EOS", ""),
	}})
	if rcpt.Err != nil {
		t.Fatalf("fake transfer: %v", rcpt.Err)
	}
	for _, ex := range rcpt.Executed {
		if ex.Notified && ex.Code != fake {
			t.Errorf("notification code = %s, want %s", ex.Code, fake)
		}
	}
}

func TestForwarderAgentForwardsNotification(t *testing.T) {
	bc := New()
	agent := eos.MustName("fake.notif")
	bc.DeployNative(agent, &ForwarderAgent{Victim: victim}, nil)
	bc.CreateAccount(alice)
	bc.CreateAccount(victim)
	if err := bc.Issue(eos.TokenContract, alice, eos.MustAsset("10.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	// alice pays the agent real EOS; the agent forwards the notification.
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, agent, "2.0000 EOS", ""),
	}})
	if rcpt.Err != nil {
		t.Fatalf("transfer: %v", rcpt.Err)
	}
	var sawVictim bool
	for _, ex := range rcpt.Executed {
		if ex.Receiver == victim && ex.Notified {
			sawVictim = true
			// Crucially the code parameter is still eosio.token.
			if ex.Code != eos.TokenContract {
				t.Errorf("forwarded notification code = %s, want eosio.token", ex.Code)
			}
		}
	}
	if !sawVictim {
		t.Error("victim was not notified")
	}
	// The victim received no EOS.
	if got := bc.Balance(eos.TokenContract, victim).Amount; got != 0 {
		t.Errorf("victim balance = %d, want 0", got)
	}
}

func TestDeferredSurvivesLaterFailure(t *testing.T) {
	bc := New()
	bc.CreateAccount(alice)
	bc.CreateAccount(bob)
	if err := bc.Issue(eos.TokenContract, alice, eos.MustAsset("10.0000 EOS")); err != nil {
		t.Fatalf("issue: %v", err)
	}
	// A deferred transfer scheduled by a native proxy is executed after the
	// parent commits, in its own context.
	deferredTx := Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, bob, "1.0000 EOS", "deferred"),
	}}
	bc.deferred = append(bc.deferred, deferredTx)
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{
		transferAction(eos.TokenContract, alice, bob, "1.0000 EOS", "parent"),
	}})
	if rcpt.Err != nil {
		t.Fatalf("parent: %v", rcpt.Err)
	}
	if got := bc.Balance(eos.TokenContract, bob).String(); got != "2.0000 EOS" {
		t.Errorf("bob balance = %s, want 2.0000 EOS (parent + deferred)", got)
	}
}

func TestDatabaseIterators(t *testing.T) {
	db := NewDatabase()
	code := eos.MustName("ctr")
	scope := eos.MustName("scope")
	tab := eos.MustName("tab")
	ic := NewIterCache(db)

	// Empty table: find returns -1 (table absent).
	if it := ic.Find(code, scope, tab, 5); it != -1 {
		t.Errorf("find in absent table = %d, want -1", it)
	}
	it1 := ic.Store(scope, tab, code, 10, []byte("ten"))
	it2 := ic.Store(scope, tab, code, 20, []byte("twenty"))
	if it1 < 0 || it2 < 0 {
		t.Fatalf("store iterators: %d %d", it1, it2)
	}
	row, err := ic.Get(it1)
	if err != nil || string(row) != "ten" {
		t.Fatalf("get: %q %v", row, err)
	}
	// find of a missing key in an existing table returns the end iterator.
	endIt := ic.Find(code, scope, tab, 15)
	if endIt >= 0 || endIt == -1 {
		t.Errorf("find(missing) = %d, want end iterator (< -1)", endIt)
	}
	if e := ic.End(code, scope, tab); e != endIt {
		t.Errorf("End = %d, want %d", e, endIt)
	}
	// next from 10 reaches 20, then end.
	n1, pk := ic.Next(it1)
	if pk != 20 {
		t.Errorf("next pk = %d, want 20", pk)
	}
	n2, _ := ic.Next(n1)
	if n2 != endIt {
		t.Errorf("next(20) = %d, want end %d", n2, endIt)
	}
	// previous from end is the last row.
	p1, pk := ic.Previous(endIt)
	if pk != 20 || p1 < 0 {
		t.Errorf("previous(end) pk = %d, want 20", pk)
	}
	// lowerbound.
	lb := ic.LowerBound(code, scope, tab, 15)
	row, err = ic.Get(lb)
	if err != nil || string(row) != "twenty" {
		t.Errorf("lowerbound(15) row = %q %v", row, err)
	}
	// update and remove.
	if err := ic.Update(it1, []byte("TEN")); err != nil {
		t.Fatalf("update: %v", err)
	}
	row, _ = ic.Get(it1)
	if string(row) != "TEN" {
		t.Errorf("after update: %q", row)
	}
	if err := ic.Remove(it1); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := ic.Get(it1); err == nil {
		t.Error("get after remove should fail")
	}
	if db.Rows(code, scope, tab) != 1 {
		t.Errorf("rows = %d, want 1", db.Rows(code, scope, tab))
	}
}

func TestSnapshotRestore(t *testing.T) {
	db := NewDatabase()
	code, scope, tab := eos.MustName("c"), eos.MustName("s"), eos.MustName("t")
	db.Store(code, scope, tab, 1, []byte("a"))
	snap := db.Snapshot()
	db.Store(code, scope, tab, 2, []byte("b"))
	db.Remove(code, scope, tab, 1)
	db.Restore(snap)
	if _, ok := db.Get(code, scope, tab, 1); !ok {
		t.Error("row 1 missing after restore")
	}
	if _, ok := db.Get(code, scope, tab, 2); ok {
		t.Error("row 2 present after restore")
	}
}

func TestPackActionRoundTrip(t *testing.T) {
	act := Action{
		Account:       eos.MustName("eosio.token"),
		Name:          eos.ActionTransfer,
		Authorization: auth(alice),
		Data:          []byte{1, 2, 3, 4},
	}
	got, err := UnpackAction(PackAction(act))
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if got.Account != act.Account || got.Name != act.Name ||
		len(got.Authorization) != 1 || got.Authorization[0].Actor != alice ||
		string(got.Data) != string(act.Data) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUnknownAccountFails(t *testing.T) {
	bc := New()
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account: eos.MustName("nosuch"), Name: eos.ActionTransfer,
	}}})
	if rcpt.Err == nil {
		t.Fatal("want error for unknown account")
	}
}
