package chain

import (
	"strings"

	"repro/internal/eos"
	"repro/internal/wasm/exec"
)

// Context is the apply context of one contract execution: the state the
// EOSVM host APIs observe and mutate while apply(receiver, code, action)
// runs.
type Context struct {
	chain *Blockchain
	tx    *txContext

	// Receiver is the account whose code is executing.
	Receiver eos.Name
	// Code is the account the action was addressed to. For notifications
	// Code != Receiver and retains the original addressee — the property
	// the Fake Notification exploit abuses (paper §2.3.2).
	Code eos.Name
	// Action is the action name.
	Action eos.Name
	// Data is the serialized action payload.
	Data []byte
	// Auth is the action's authorization list.
	Auth []PermissionLevel

	iters    *IterCache
	console  strings.Builder
	notified []eos.Name
	inline   []Action
	deferred []Transaction
	dbOps    []DBOp
	depth    int

	vm *exec.VM
}

// Chain returns the blockchain this context executes on.
func (ctx *Context) Chain() *Blockchain { return ctx.chain }

// HasAuth reports whether the action carries authorization of account.
func (ctx *Context) HasAuth(account eos.Name) bool {
	for _, pl := range ctx.Auth {
		if pl.Actor == account {
			return true
		}
	}
	return false
}

// RequireAuth asserts the action carries authorization of account.
func (ctx *Context) RequireAuth(account eos.Name) error {
	if !ctx.HasAuth(account) {
		return &AssertError{Msg: "missing required authority " + account.String()}
	}
	return nil
}

// RequireRecipient schedules a notification of the current action to
// account; the notified contract runs with the same code and data.
func (ctx *Context) RequireRecipient(account eos.Name) {
	if account == ctx.Receiver {
		return
	}
	ctx.notified = append(ctx.notified, account)
}

// SendInline schedules an inline action in the current transaction. The
// caller controls it: if any subsequent part of the transaction fails, the
// inline action is reverted with everything else (Rollback, paper §2.3.5).
func (ctx *Context) SendInline(act Action) {
	ctx.inline = append(ctx.inline, act)
}

// SendDeferred schedules a deferred transaction executed after the current
// one; its failure does not revert the current transaction.
func (ctx *Context) SendDeferred(tx Transaction) {
	ctx.deferred = append(ctx.deferred, tx)
}

// Print appends to the action console.
func (ctx *Context) Print(s string) { ctx.console.WriteString(s) }

// RecordDBOp registers a database access for the DBG.
func (ctx *Context) RecordDBOp(kind DBOpKind, tab eos.Name) {
	ctx.RecordDBOpKey(kind, tab, 0)
}

// RecordDBOpKey registers a database access with its primary key.
func (ctx *Context) RecordDBOpKey(kind DBOpKind, tab eos.Name, key uint64) {
	ctx.dbOps = append(ctx.dbOps, DBOp{
		Contract: ctx.Receiver, Action: ctx.Action, Kind: kind, Table: tab, Key: key,
	})
}

// Iters exposes the iterator cache to host APIs and native contracts.
func (ctx *Context) Iters() *IterCache { return ctx.iters }
