package chain

import (
	"encoding/binary"
	"fmt"

	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/failure"
)

// accountsTable is the balance table name used by eosio.token.
var accountsTable = eos.MustName("accounts")

// TokenContract is the Go-native implementation of the eosio.token system
// contract. Deploying the same implementation under a different account
// (with the same "EOS" symbol) is exactly how the Fake EOS adversary mints
// counterfeit tokens (paper §2.3.1) — EOSIO lets anyone issue a token with
// any name.
type TokenContract struct {
	Issuer eos.Name
	Sym    eos.Symbol
}

// ApplyNative dispatches the token actions.
func (t *TokenContract) ApplyNative(ctx *Context, code, action eos.Name) error {
	// The token contract only acts on actions addressed to itself.
	if code != ctx.Receiver {
		return nil
	}
	switch action {
	case eos.ActionTransfer:
		return t.transfer(ctx)
	case eos.MustName("issue"):
		return t.issue(ctx)
	default:
		return &AssertError{Msg: fmt.Sprintf("unknown action %s", action)}
	}
}

func (t *TokenContract) balance(ctx *Context, owner eos.Name) eos.Asset {
	row, ok := ctx.chain.db.Get(ctx.Receiver, owner, accountsTable, uint64(t.Sym)>>8)
	if !ok || len(row) < 16 {
		return eos.NewAsset(0, t.Sym)
	}
	return eos.Asset{
		Amount: int64(binary.LittleEndian.Uint64(row[:8])),
		Symbol: eos.Symbol(binary.LittleEndian.Uint64(row[8:])),
	}
}

func (t *TokenContract) setBalance(ctx *Context, owner eos.Name, a eos.Asset) {
	row := make([]byte, 16)
	binary.LittleEndian.PutUint64(row[:8], uint64(a.Amount))
	binary.LittleEndian.PutUint64(row[8:], uint64(a.Symbol))
	ctx.chain.db.Store(ctx.Receiver, owner, accountsTable, uint64(t.Sym)>>8, row)
	ctx.RecordDBOp(DBWrite, accountsTable)
}

// issue implements issue(to, quantity, memo): only the issuer may mint.
func (t *TokenContract) issue(ctx *Context) error {
	args, err := decodeIssue(ctx.Data)
	if err != nil {
		return &AssertError{Msg: err.Error()}
	}
	if err := ctx.RequireAuth(t.Issuer); err != nil {
		return err
	}
	if args.Quantity.Symbol != t.Sym {
		return &AssertError{Msg: "symbol precision mismatch"}
	}
	bal, _ := t.balance(ctx, args.To).Add(args.Quantity)
	t.setBalance(ctx, args.To, bal)
	return nil
}

// transfer implements transfer(from, to, quantity, memo) with EOSIO
// semantics: authorization of from, balance movement, and notification of
// both parties via require_recipient.
func (t *TokenContract) transfer(ctx *Context) error {
	args, err := DecodeTransfer(ctx.Data)
	if err != nil {
		return &AssertError{Msg: err.Error()}
	}
	if args.From == args.To {
		return &AssertError{Msg: "cannot transfer to self"}
	}
	if err := ctx.RequireAuth(args.From); err != nil {
		return err
	}
	if ctx.chain.Account(args.To) == nil {
		return &AssertError{Msg: "to account does not exist"}
	}
	if args.Quantity.Symbol != t.Sym {
		return &AssertError{Msg: "symbol precision mismatch"}
	}
	if args.Quantity.Amount <= 0 {
		return &AssertError{Msg: "must transfer positive quantity"}
	}
	fromBal := t.balance(ctx, args.From)
	if fromBal.Amount < args.Quantity.Amount {
		return &AssertError{Msg: "overdrawn balance"}
	}
	fromBal.Amount -= args.Quantity.Amount
	t.setBalance(ctx, args.From, fromBal)
	toBal, _ := t.balance(ctx, args.To).Add(args.Quantity)
	t.setBalance(ctx, args.To, toBal)
	ctx.RequireRecipient(args.From)
	ctx.RequireRecipient(args.To)
	return nil
}

// TransferArgs is the decoded transfer action payload.
type TransferArgs struct {
	From     eos.Name
	To       eos.Name
	Quantity eos.Asset
	Memo     string
}

// DecodeTransfer parses the canonical transfer payload.
func DecodeTransfer(data []byte) (TransferArgs, error) {
	d := abi.NewDecoder(abi.TransferABI(), data)
	vals, err := d.DecodeAction(eos.ActionTransfer)
	if err != nil {
		return TransferArgs{}, fmt.Errorf("bad transfer payload: %w", err)
	}
	return TransferArgs{
		From:     vals[0].(eos.Name),
		To:       vals[1].(eos.Name),
		Quantity: vals[2].(eos.Asset),
		Memo:     vals[3].(string),
	}, nil
}

// EncodeTransfer serializes a transfer payload.
func EncodeTransfer(args TransferArgs) []byte {
	enc := abi.NewEncoder(abi.TransferABI())
	p, err := enc.EncodeAction(eos.ActionTransfer, []any{args.From, args.To, args.Quantity, args.Memo})
	if err != nil {
		// All four field types are statically correct; this is unreachable.
		panic(err)
	}
	return p
}

type issueArgs struct {
	To       eos.Name
	Quantity eos.Asset
	Memo     string
}

var issueABI = &abi.ABI{
	Structs: []abi.Struct{{
		Name: "issue",
		Fields: []abi.Field{
			{Name: "to", Type: "name"},
			{Name: "quantity", Type: "asset"},
			{Name: "memo", Type: "string"},
		},
	}},
	Actions: []abi.Action{{Name: eos.MustName("issue"), Type: "issue"}},
}

func decodeIssue(data []byte) (issueArgs, error) {
	d := abi.NewDecoder(issueABI, data)
	vals, err := d.DecodeAction(eos.MustName("issue"))
	if err != nil {
		return issueArgs{}, fmt.Errorf("bad issue payload: %w", err)
	}
	return issueArgs{To: vals[0].(eos.Name), Quantity: vals[1].(eos.Asset), Memo: vals[2].(string)}, nil
}

// EncodeIssue serializes an issue payload.
func EncodeIssue(to eos.Name, quantity eos.Asset, memo string) []byte {
	enc := abi.NewEncoder(issueABI)
	p, err := enc.EncodeAction(eos.MustName("issue"), []any{to, quantity, memo})
	if err != nil {
		panic(err)
	}
	return p
}

// Issue mints quantity to account `to` (test/bench convenience: pushes an
// issue transaction authorized by the issuer).
func (bc *Blockchain) Issue(token, to eos.Name, quantity eos.Asset) error {
	acct := bc.Account(token)
	if acct == nil {
		return failure.Newf(failure.Trap, "chain: no token contract %s", token)
	}
	tc, ok := acct.Native.(*TokenContract)
	if !ok {
		return failure.Newf(failure.Trap, "chain: %s is not a native token contract", token)
	}
	rcpt := bc.PushTransaction(Transaction{Actions: []Action{{
		Account:       token,
		Name:          eos.MustName("issue"),
		Authorization: []PermissionLevel{{Actor: tc.Issuer, Permission: eos.ActiveAuth}},
		Data:          EncodeIssue(to, quantity, ""),
	}}})
	return rcpt.Err
}

// Balance returns `owner`'s balance at the given token contract.
func (bc *Blockchain) Balance(token, owner eos.Name) eos.Asset {
	acct := bc.Account(token)
	if acct == nil {
		return eos.EOS(0)
	}
	tc, ok := acct.Native.(*TokenContract)
	if !ok {
		return eos.EOS(0)
	}
	row, found := bc.db.Get(token, owner, accountsTable, uint64(tc.Sym)>>8)
	if !found || len(row) < 16 {
		return eos.NewAsset(0, tc.Sym)
	}
	return eos.Asset{
		Amount: int64(binary.LittleEndian.Uint64(row[:8])),
		Symbol: eos.Symbol(binary.LittleEndian.Uint64(row[8:])),
	}
}

// ForwarderAgent is the fake.notif adversary contract of paper §2.3.2: on
// being notified of a genuine eosio.token transfer it forwards the
// notification to the victim. Because require_recipient preserves the
// `code` parameter (still eosio.token), the victim's Fake-EOS guard passes
// even though the victim received no EOS.
type ForwarderAgent struct {
	Victim eos.Name
}

// ApplyNative forwards transfer notifications from eosio.token.
func (f *ForwarderAgent) ApplyNative(ctx *Context, code, action eos.Name) error {
	if code == eos.TokenContract && action == eos.ActionTransfer && ctx.Receiver != f.Victim {
		ctx.RequireRecipient(f.Victim)
	}
	return nil
}

// EvilNotifier is the adversary contract of the inter-contract call
// scenario (WACANA's cross-contract family): on any action addressed to
// itself it notifies the victim, so the victim's apply runs with
// code == the evil account — the cross-boundary context a contract must
// never treat as its own. A victim that dispatches privileged logic (or
// sends inline actions) for foreign-code actions is exploitable: the
// attacker reaches that logic through the notifier without ever
// addressing the victim.
type EvilNotifier struct {
	Victim eos.Name
}

// ApplyNative forwards every self-addressed action to the victim.
func (e *EvilNotifier) ApplyNative(ctx *Context, code, action eos.Name) error {
	if code == ctx.Receiver && ctx.Receiver != e.Victim {
		ctx.RequireRecipient(e.Victim)
	}
	return nil
}

// ProxyAgent replays a received action to a target as an inline action —
// the "evil contract" of the Rollback exploit (paper §2.3.5): it
// participates and checks the outcome inside one transaction, asserting
// (and thereby reverting everything) when the outcome is unfavourable.
type ProxyAgent struct {
	Token eos.Name // token contract used to pay the target
}

// RollbackProbeArgs is the payload of the ProxyAgent's "probe" action.
type RollbackProbeArgs struct {
	Target   eos.Name
	Quantity eos.Asset
	Memo     string
}

// ActionProbe is the ProxyAgent entry action name.
var ActionProbe = eos.MustName("probe")

// ApplyNative implements the probe: pay the target via an inline transfer,
// then (after the target's reveal logic ran) assert on our balance delta.
// The balance check itself happens in the fuzzer, which inspects whether
// the transaction would have been profitable; the agent's job is to place
// both legs in one revertible transaction.
func (p *ProxyAgent) ApplyNative(ctx *Context, code, action eos.Name) error {
	if code != ctx.Receiver || action != ActionProbe {
		return nil
	}
	var args RollbackProbeArgs
	if len(ctx.Data) < 24 {
		return &AssertError{Msg: "bad probe payload"}
	}
	args.Target = eos.Name(binary.LittleEndian.Uint64(ctx.Data[0:]))
	args.Quantity = eos.Asset{
		Amount: int64(binary.LittleEndian.Uint64(ctx.Data[8:])),
		Symbol: eos.Symbol(binary.LittleEndian.Uint64(ctx.Data[16:])),
	}
	if rest := ctx.Data[24:]; len(rest) > 0 {
		args.Memo = string(rest)
	}
	ctx.SendInline(Action{
		Account:       p.Token,
		Name:          eos.ActionTransfer,
		Authorization: []PermissionLevel{{Actor: ctx.Receiver, Permission: eos.ActiveAuth}},
		Data: EncodeTransfer(TransferArgs{
			From: ctx.Receiver, To: args.Target, Quantity: args.Quantity, Memo: args.Memo,
		}),
	})
	return nil
}
