// Package chain implements a local EOSIO blockchain: accounts, contract
// deployment, transaction execution with EOSIO's notification and inline /
// deferred action semantics, the multi-index key-value database exposed via
// the db_* intrinsics, native system contracts (eosio.token), and the host
// API surface the EOSVM provides to Wasm contracts.
//
// It substitutes for the Nodeos 1.8.6 testbed the paper instruments: the
// fuzzer interacts with contracts exactly the way transactions do on the
// real chain (including rollback of failed transactions and cross-contract
// notification fan-out), which is all the vulnerability oracles observe.
package chain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/failure"

	"repro/internal/eos"
)

// tableKey identifies one (code, scope, table) database table.
type tableKey struct {
	Code  eos.Name
	Scope eos.Name
	Table eos.Name
}

// String renders the key for diagnostics.
func (k tableKey) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Code, k.Scope, k.Table)
}

// table is one primary-index table: rows sorted by primary key.
type table struct {
	keys []uint64 // sorted
	rows map[uint64][]byte
}

func newTable() *table { return &table{rows: map[uint64][]byte{}} }

func (t *table) find(id uint64) (int, bool) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= id })
	return i, i < len(t.keys) && t.keys[i] == id
}

func (t *table) store(id uint64, data []byte) {
	if _, ok := t.rows[id]; !ok {
		i, _ := t.find(id)
		t.keys = append(t.keys, 0)
		copy(t.keys[i+1:], t.keys[i:])
		t.keys[i] = id
	}
	t.rows[id] = append([]byte(nil), data...)
}

func (t *table) remove(id uint64) {
	if _, ok := t.rows[id]; !ok {
		return
	}
	delete(t.rows, id)
	i, _ := t.find(id)
	t.keys = append(t.keys[:i], t.keys[i+1:]...)
}

func (t *table) clone() *table {
	c := &table{keys: append([]uint64(nil), t.keys...), rows: make(map[uint64][]byte, len(t.rows))}
	for k, v := range t.rows {
		c.rows[k] = append([]byte(nil), v...)
	}
	return c
}

// Database is the chain's persistent key-value store.
type Database struct {
	tables map[tableKey]*table
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{tables: map[tableKey]*table{}} }

// Snapshot deep-copies the database for transaction rollback.
func (db *Database) Snapshot() *Database {
	s := &Database{tables: make(map[tableKey]*table, len(db.tables))}
	for k, t := range db.tables {
		s.tables[k] = t.clone()
	}
	return s
}

// Restore replaces the database contents with a snapshot.
func (db *Database) Restore(s *Database) { db.tables = s.tables }

func (db *Database) tableFor(k tableKey, create bool) *table {
	t, ok := db.tables[k]
	if !ok && create {
		t = newTable()
		db.tables[k] = t
	}
	return t
}

// Store inserts or replaces a row.
func (db *Database) Store(code, scope, tab eos.Name, id uint64, data []byte) {
	db.tableFor(tableKey{code, scope, tab}, true).store(id, data)
}

// Get returns the row with primary key id.
func (db *Database) Get(code, scope, tab eos.Name, id uint64) ([]byte, bool) {
	t := db.tableFor(tableKey{code, scope, tab}, false)
	if t == nil {
		return nil, false
	}
	row, ok := t.rows[id]
	return row, ok
}

// Remove deletes the row with primary key id.
func (db *Database) Remove(code, scope, tab eos.Name, id uint64) {
	if t := db.tableFor(tableKey{code, scope, tab}, false); t != nil {
		t.remove(id)
	}
}

// DumpContract renders every row stored under code's tables in a
// canonical form: lines "scope/table/key=hex(payload)" sorted by scope,
// table and primary key. The ordering-dependence oracle compares these
// dumps across permuted transaction sequences, so the rendering must be
// a pure function of database content (map iteration order must not
// leak through).
func (db *Database) DumpContract(code eos.Name) string {
	var keys []tableKey
	for k := range db.tables {
		if k.Code == code {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Scope != keys[j].Scope {
			return keys[i].Scope < keys[j].Scope
		}
		return keys[i].Table < keys[j].Table
	})
	var sb strings.Builder
	for _, k := range keys {
		t := db.tables[k]
		for _, id := range t.keys {
			fmt.Fprintf(&sb, "%s/%s/%d=%x\n", k.Scope, k.Table, id, t.rows[id])
		}
	}
	return sb.String()
}

// Rows returns the number of rows in a table.
func (db *Database) Rows(code, scope, tab eos.Name) int {
	if t := db.tableFor(tableKey{code, scope, tab}, false); t != nil {
		return len(t.keys)
	}
	return 0
}

// --- Iterator layer (db_* intrinsic semantics) ------------------------------

// iterRef is a resolved database iterator: a table plus a position.
type iterRef struct {
	key tableKey
	id  uint64
	end bool
}

// IterCache implements EOSIO's per-apply-context iterator handles: positive
// handles index live rows, negative handles (-2-tableIdx) are per-table end
// sentinels, and -1 is "not found" where the table itself does not exist.
type IterCache struct {
	db     *Database
	refs   []iterRef  // positive handles: refs[handle-1]... (see mapping below)
	tables []tableKey // end-iterator table registry
	tindex map[tableKey]int
}

// NewIterCache returns an iterator cache over db.
func NewIterCache(db *Database) *IterCache {
	return &IterCache{db: db, tindex: map[tableKey]int{}}
}

const iterNotFound = -1

func (ic *IterCache) endHandle(k tableKey) int32 {
	idx, ok := ic.tindex[k]
	if !ok {
		idx = len(ic.tables)
		ic.tables = append(ic.tables, k)
		ic.tindex[k] = idx
	}
	return int32(-2 - idx)
}

func (ic *IterCache) add(k tableKey, id uint64) int32 {
	ic.refs = append(ic.refs, iterRef{key: k, id: id})
	return int32(len(ic.refs) - 1)
}

func (ic *IterCache) ref(handle int32) (iterRef, bool) {
	if handle < 0 || int(handle) >= len(ic.refs) {
		return iterRef{}, false
	}
	return ic.refs[handle], true
}

func (ic *IterCache) endTable(handle int32) (tableKey, bool) {
	idx := int(-2 - handle)
	if idx < 0 || idx >= len(ic.tables) {
		return tableKey{}, false
	}
	return ic.tables[idx], true
}

// Find implements db_find_i64.
func (ic *IterCache) Find(code, scope, tab eos.Name, id uint64) int32 {
	k := tableKey{code, scope, tab}
	t := ic.db.tableFor(k, false)
	if t == nil {
		return iterNotFound
	}
	if _, ok := t.rows[id]; !ok {
		return ic.endHandle(k)
	}
	return ic.add(k, id)
}

// End implements db_end_i64.
func (ic *IterCache) End(code, scope, tab eos.Name) int32 {
	k := tableKey{code, scope, tab}
	if ic.db.tableFor(k, false) == nil {
		return iterNotFound
	}
	return ic.endHandle(k)
}

// LowerBound implements db_lowerbound_i64.
func (ic *IterCache) LowerBound(code, scope, tab eos.Name, id uint64) int32 {
	k := tableKey{code, scope, tab}
	t := ic.db.tableFor(k, false)
	if t == nil {
		return iterNotFound
	}
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= id })
	if i == len(t.keys) {
		return ic.endHandle(k)
	}
	return ic.add(k, t.keys[i])
}

// Store implements db_store_i64, returning an iterator to the new row.
func (ic *IterCache) Store(scope eos.Name, tab eos.Name, code eos.Name, id uint64, data []byte) int32 {
	k := tableKey{code, scope, tab}
	ic.db.tableFor(k, true).store(id, data)
	return ic.add(k, id)
}

// Get implements db_get_i64: returns the row bytes for a live iterator.
func (ic *IterCache) Get(handle int32) ([]byte, error) {
	r, ok := ic.ref(handle)
	if !ok {
		return nil, failure.Newf(failure.Trap, "chain: invalid db iterator %d", handle)
	}
	t := ic.db.tableFor(r.key, false)
	if t == nil {
		return nil, failure.Newf(failure.Trap, "chain: iterator %d references dropped table %s", handle, r.key)
	}
	row, ok := t.rows[r.id]
	if !ok {
		return nil, failure.Newf(failure.Trap, "chain: iterator %d references erased row %d", handle, r.id)
	}
	return row, nil
}

// Update implements db_update_i64.
func (ic *IterCache) Update(handle int32, data []byte) error {
	r, ok := ic.ref(handle)
	if !ok {
		return failure.Newf(failure.Trap, "chain: invalid db iterator %d", handle)
	}
	ic.db.tableFor(r.key, true).store(r.id, data)
	return nil
}

// Remove implements db_remove_i64.
func (ic *IterCache) Remove(handle int32) error {
	r, ok := ic.ref(handle)
	if !ok {
		return failure.Newf(failure.Trap, "chain: invalid db iterator %d", handle)
	}
	if t := ic.db.tableFor(r.key, false); t != nil {
		t.remove(r.id)
	}
	return nil
}

// Next implements db_next_i64; it returns the next iterator and writes the
// next primary key through idOut when non-nil.
func (ic *IterCache) Next(handle int32) (int32, uint64) {
	r, ok := ic.ref(handle)
	if !ok {
		return iterNotFound, 0
	}
	t := ic.db.tableFor(r.key, false)
	if t == nil {
		return iterNotFound, 0
	}
	i, found := t.find(r.id)
	if found {
		i++
	}
	if i >= len(t.keys) {
		return ic.endHandle(r.key), 0
	}
	id := t.keys[i]
	return ic.add(r.key, id), id
}

// Previous implements db_previous_i64.
func (ic *IterCache) Previous(handle int32) (int32, uint64) {
	if handle < iterNotFound {
		// End iterator: previous is the last row.
		k, ok := ic.endTable(handle)
		if !ok {
			return iterNotFound, 0
		}
		t := ic.db.tableFor(k, false)
		if t == nil || len(t.keys) == 0 {
			return iterNotFound, 0
		}
		id := t.keys[len(t.keys)-1]
		return ic.add(k, id), id
	}
	r, ok := ic.ref(handle)
	if !ok {
		return iterNotFound, 0
	}
	t := ic.db.tableFor(r.key, false)
	if t == nil {
		return iterNotFound, 0
	}
	i, _ := t.find(r.id)
	if i == 0 {
		return iterNotFound, 0
	}
	id := t.keys[i-1]
	return ic.add(r.key, id), id
}
