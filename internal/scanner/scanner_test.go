package scanner

import (
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/trace"
	"repro/internal/wasm"
)

var (
	self  = eos.MustName("victim")
	agent = eos.MustName("fake.notif")
)

// scanModule builds a module whose imports cover the oracle API sets.
func scanModule() *wasm.Module {
	m := &wasm.Module{FuncNames: map[uint32]string{}}
	void := m.AddType(wasm.FuncType{})
	names := []string{
		"require_auth", "eosio_assert", "send_inline", "send_deferred",
		"db_store_i64", "tapos_block_num", "tapos_block_prefix", "prints",
	}
	for _, n := range names {
		m.Imports = append(m.Imports, wasm.Import{Module: "env", Name: n, Kind: wasm.ExternalFunc, TypeIndex: void})
	}
	// Two local functions: apply (8) and eosponser (9).
	m.Funcs = []uint32{void, void}
	m.Code = []wasm.Code{{Body: []wasm.Instr{wasm.End()}}, {Body: []wasm.Instr{wasm.End()}}}
	return m
}

func callEvent(callee uint32) trace.Event {
	return trace.Event{Kind: trace.HookCall, Operand: uint64(callee)}
}

func dispatchTrace(eosponserID uint32) trace.Trace {
	return trace.Trace{
		Contract: self,
		Action:   eos.ActionTransfer,
		Events: []trace.Event{
			{Kind: trace.HookCall, Op: wasm.OpCallIndirect, Operand: uint64(eosponserID)},
			{Kind: trace.HookFuncBegin, Func: eosponserID},
		},
	}
}

func TestRecordEosponser(t *testing.T) {
	s := New(scanModule(), self)
	if _, ok := s.EosponserID(); ok {
		t.Fatal("eosponser known before any trace")
	}
	tr := dispatchTrace(9)
	s.RecordEosponser(&tr)
	id, ok := s.EosponserID()
	if !ok || id != 9 {
		t.Fatalf("eosponser = %d %v", id, ok)
	}
}

func TestFakeEOSOracle(t *testing.T) {
	s := New(scanModule(), self)
	tr := dispatchTrace(9)
	s.RecordEosponser(&tr)

	// Eosponser not entered -> safe.
	s.ObserveFakeEOS([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(0)}}})
	if s.Report().Vulnerable[contractgen.ClassFakeEOS] {
		t.Error("flagged without eosponser entry")
	}
	// Entered -> vulnerable.
	s.ObserveFakeEOS([]trace.Trace{tr})
	if !s.Report().Vulnerable[contractgen.ClassFakeEOS] {
		t.Error("missed eosponser entry under fake EOS")
	}
}

func TestFakeNotifOracleGuard(t *testing.T) {
	guarded := dispatchTrace(9)
	guarded.Events = append(guarded.Events,
		trace.Event{Kind: trace.HookCmp, Op: wasm.OpI64Ne, Operand: uint64(agent)},
		trace.Event{Kind: trace.HookCmp, Op: wasm.OpI64Ne, Operand: uint64(self)},
	)
	s := New(scanModule(), self)
	s.RecordEosponser(&guarded)
	s.ObserveFakeNotif([]trace.Trace{guarded}, agent)
	if s.Report().Vulnerable[contractgen.ClassFakeNotif] {
		t.Error("guard comparison not recognized")
	}

	// Without the guard comparison: vulnerable.
	bare := dispatchTrace(9)
	s2 := New(scanModule(), self)
	s2.RecordEosponser(&bare)
	s2.ObserveFakeNotif([]trace.Trace{bare}, agent)
	if !s2.Report().Vulnerable[contractgen.ClassFakeNotif] {
		t.Error("missing guard not flagged")
	}

	// A comparison against something other than the agent/self pair does
	// not count as the guard.
	other := dispatchTrace(9)
	other.Events = append(other.Events,
		trace.Event{Kind: trace.HookCmp, Op: wasm.OpI64Eq, Operand: 123},
		trace.Event{Kind: trace.HookCmp, Op: wasm.OpI64Eq, Operand: 456},
	)
	s3 := New(scanModule(), self)
	s3.RecordEosponser(&other)
	s3.ObserveFakeNotif([]trace.Trace{other}, agent)
	if !s3.Report().Vulnerable[contractgen.ClassFakeNotif] {
		t.Error("unrelated comparison mistaken for the guard")
	}
}

func TestMissAuthOracle(t *testing.T) {
	m := scanModule()
	apis := APISetsFor(m)
	if !apis.Auths[0] || !apis.Effects[2] || !apis.Blockinfo[5] {
		t.Fatalf("APISetsFor misclassified: %+v", apis)
	}

	// Effect (send_inline=2) without prior auth -> vulnerable.
	s := New(m, self)
	s.ObserveDirectAction([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(2)}}})
	if !s.Report().Vulnerable[contractgen.ClassMissAuth] {
		t.Error("unauthorized effect not flagged")
	}

	// require_auth (0) before the effect -> safe.
	s2 := New(m, self)
	s2.ObserveDirectAction([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(0), callEvent(2)}}})
	if s2.Report().Vulnerable[contractgen.ClassMissAuth] {
		t.Error("authorized effect flagged")
	}

	// Auth AFTER the effect does not sanitize it.
	s3 := New(m, self)
	s3.ObserveDirectAction([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(2), callEvent(0)}}})
	if !s3.Report().Vulnerable[contractgen.ClassMissAuth] {
		t.Error("late auth accepted")
	}
}

func TestBlockinfoAndRollbackOracles(t *testing.T) {
	m := scanModule()
	s := New(m, self)
	s.Observe([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(6)}}}) // tapos_block_prefix
	r := s.Report()
	if !r.Vulnerable[contractgen.ClassBlockinfoDep] {
		t.Error("tapos call not flagged")
	}
	if r.Vulnerable[contractgen.ClassRollback] {
		t.Error("rollback flagged without send_inline")
	}

	s2 := New(m, self)
	s2.Observe([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(2)}}}) // send_inline
	if !s2.Report().Vulnerable[contractgen.ClassRollback] {
		t.Error("send_inline not flagged")
	}
	// send_deferred (3) alone must NOT trip the Rollback oracle.
	s3 := New(m, self)
	s3.Observe([]trace.Trace{{Contract: self, Events: []trace.Event{callEvent(3)}}})
	if s3.Report().Vulnerable[contractgen.ClassRollback] {
		t.Error("send_deferred mistaken for rollback")
	}
}

func TestAPICallDetector(t *testing.T) {
	m := scanModule()
	d := NewAPICallDetector("TaposUse", m, "tapos_block_num", "tapos_block_prefix")
	if d.Name() != "TaposUse" || d.Vulnerable() {
		t.Fatalf("fresh detector: %s %v", d.Name(), d.Vulnerable())
	}
	apis := APISetsFor(m)
	// A call to prints (7) does not trip it.
	d.Observe(&trace.Trace{Events: []trace.Event{callEvent(7)}}, apis)
	if d.Vulnerable() {
		t.Error("unrelated call tripped the detector")
	}
	// tapos_block_num is import index 5 in scanModule.
	d.Observe(&trace.Trace{Events: []trace.Event{callEvent(5)}}, apis)
	if !d.Vulnerable() {
		t.Error("tapos call not detected")
	}
}

func TestScannerCustomPlumbing(t *testing.T) {
	m := scanModule()
	s := New(m, self)
	d := NewAPICallDetector("InlineUse", m, "send_inline")
	s.AddCustom(d)
	s.ObserveCustom([]trace.Trace{{Events: []trace.Event{callEvent(2)}}})
	res := s.CustomResults()
	if !res["InlineUse"] {
		t.Errorf("custom results: %v", res)
	}
}
