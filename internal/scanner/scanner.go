// Package scanner implements the five vulnerability detectors of paper
// §3.5. The detectors are trace oracles: Engine executes the adversary
// payloads of §2.3 and the scanner inspects the function-call chains (id⃗)
// and instruction operands the traces record.
package scanner

import (
	"repro/internal/chain"
	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// APISets names the host functions each oracle reasons about.
type APISets struct {
	Auths         map[uint32]bool // permission APIs (§2.2)
	Effects       map[uint32]bool // side-effect APIs
	Blockinfo     map[uint32]bool // tapos_* APIs
	SendInline    uint32
	HasSendInline bool
	EosioAssert   uint32
}

// APISetsFor derives the import-index sets from a module's import section.
func APISetsFor(m *wasm.Module) APISets {
	s := APISets{
		Auths:     map[uint32]bool{},
		Effects:   map[uint32]bool{},
		Blockinfo: map[uint32]bool{},
	}
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternalFunc {
			continue
		}
		switch {
		case chain.PermissionAPIs[imp.Name]:
			s.Auths[idx] = true
		case chain.EffectAPIs[imp.Name]:
			s.Effects[idx] = true
			if imp.Name == chain.APISendInline {
				s.SendInline = idx
				s.HasSendInline = true
			}
		case chain.BlockinfoAPIs[imp.Name]:
			s.Blockinfo[idx] = true
		case imp.Name == chain.APIEosioAssert:
			s.EosioAssert = idx
		}
		idx++
	}
	return s
}

// Report is the per-class verdict of one fuzzing campaign.
type Report struct {
	Vulnerable map[contractgen.Class]bool
}

// NewReport returns an all-clear report.
func NewReport() *Report {
	return &Report{Vulnerable: map[contractgen.Class]bool{}}
}

// Scanner accumulates oracle evidence across the fuzzing campaign.
type Scanner struct {
	apis APISets
	self eos.Name

	// eosponser identification (§3.5: id_e located from a valid EOS
	// transaction's traces).
	eosponserID  uint32
	hasEosponser bool

	// Evidence.
	fakeEOSHit   bool // eosponser entered under the Fake EOS oracle
	fakeNotifHit bool // eosponser entered under the Fake Notif oracle
	guardSeen    bool // i64.eq/ne over (agent, _self) observed in eosponser
	missAuthHit  bool
	blockinfoHit bool
	rollbackHit  bool

	// On-chain-data scenario evidence (WACANA's multi-transaction
	// families), fed by the fuzzer's scenario driver only — the concolic
	// main loop never touches these, so the five trace-oracle verdicts
	// above are independent of the scenario runs.
	stateTamperHit   bool
	orderDepHit      bool
	crossContractHit bool

	customs []CustomDetector
}

// New returns a scanner for a contract deployed as self.
func New(m *wasm.Module, self eos.Name) *Scanner {
	return &Scanner{apis: APISetsFor(m), self: self}
}

// RecordEosponser locates id_e from a transfer-dispatch trace: the callee
// of the first indirect call (the dispatcher's action invocation).
func (s *Scanner) RecordEosponser(tr *trace.Trace) {
	if s.hasEosponser {
		return
	}
	for _, ev := range tr.Events {
		if ev.Kind == trace.HookCall && ev.Op == wasm.OpCallIndirect {
			s.eosponserID = uint32(ev.Operand)
			s.hasEosponser = true
			return
		}
	}
}

// EosponserID returns id_e when known.
func (s *Scanner) EosponserID() (uint32, bool) { return s.eosponserID, s.hasEosponser }

// eosponserEntered reports whether id_e's body began executing in tr.
func (s *Scanner) eosponserEntered(tr *trace.Trace) bool {
	if !s.hasEosponser {
		return false
	}
	for _, ev := range tr.Events {
		if ev.Kind == trace.HookFuncBegin && ev.Func == s.eosponserID {
			return true
		}
	}
	return false
}

// ObserveFakeEOS feeds traces produced under the Fake EOS oracle (§2.3.1):
// a direct eosponser invocation or a transfer of counterfeit EOS. The
// contract is vulnerable if the eosponser actually ran: vul := id_e ∈ id⃗.
func (s *Scanner) ObserveFakeEOS(traces []trace.Trace) {
	for i := range traces {
		if s.eosponserEntered(&traces[i]) {
			s.fakeEOSHit = true
		}
	}
}

// ObserveFakeNotif feeds traces produced under the Fake Notification oracle
// (§2.3.2): a genuine eosio.token notification forwarded by the agent. The
// oracle needs both the hit (id_e ∈ id⃗) and the absence of guard code —
// an i64.eq/i64.ne whose operands are the agent's name and _self:
//
//	vul := id_e ∈ id⃗ ∧ τ⃗ ∌ (i64.eq|i64.ne, (fake.notif, _self))
func (s *Scanner) ObserveFakeNotif(traces []trace.Trace, agent eos.Name) {
	for i := range traces {
		tr := &traces[i]
		if !s.eosponserEntered(tr) {
			continue
		}
		s.fakeNotifHit = true
		// Scan HookCmp operand pairs (emitted a then b per comparison).
		evs := tr.Events
		for j := 0; j+1 < len(evs); j++ {
			if evs[j].Kind != trace.HookCmp || evs[j+1].Kind != trace.HookCmp {
				continue
			}
			a, b := evs[j].Operand, evs[j+1].Operand
			pair := map[uint64]bool{a: true, b: true}
			if pair[uint64(agent)] && pair[uint64(s.self)] {
				s.guardSeen = true
			}
			j++ // consume the pair
		}
	}
}

// ObserveDirectAction feeds traces of a directly invoked (code == receiver)
// non-transfer action: the scope of the MissAuth oracle.
//
//	vul := any({ id⃗[0→i] ∩ Auths = ∅ ∧ id_i ∈ Effects | i > 0 })
func (s *Scanner) ObserveDirectAction(traces []trace.Trace) {
	for i := range traces {
		authSeen := false
		for _, ev := range traces[i].Events {
			if ev.Kind != trace.HookCall {
				continue
			}
			id := uint32(ev.Operand)
			if s.apis.Auths[id] {
				authSeen = true
			}
			if s.apis.Effects[id] && !authSeen {
				s.missAuthHit = true
			}
		}
	}
}

// Observe feeds every trace for the campaign-wide oracles:
//
//	BlockinfoDep: id⃗ ∩ {#tapos_block_prefix, #tapos_block_num} ≠ ∅
//	Rollback:     #send_inline ∈ id⃗
func (s *Scanner) Observe(traces []trace.Trace) {
	for i := range traces {
		for _, ev := range traces[i].Events {
			if ev.Kind != trace.HookCall {
				continue
			}
			id := uint32(ev.Operand)
			if s.apis.Blockinfo[id] {
				s.blockinfoHit = true
			}
			if s.apis.HasSendInline && id == s.apis.SendInline {
				s.rollbackHit = true
			}
		}
	}
}

// ObserveTamperPair feeds the state-tampering scenario: the same action
// replayed twice with identical payloads, first under the payload owner's
// authority, then under the attacker's. The contract is vulnerable when
// the attacker-signed replay commits AND rewrites a (table, key) the
// owner-signed transaction wrote — on-chain state established under one
// authority was overwritten under another. Only the action's own writes
// count: notification-driven bookkeeping (the eosponser reacting to a
// payout) is authorized by the token transfer itself and belongs to the
// Fake EOS / MissAuth oracle domains.
func (s *Scanner) ObserveTamperPair(action eos.Name, owner, tamper *chain.Receipt) {
	if owner.Reverted() || tamper.Reverted() {
		return
	}
	type rowKey struct {
		table eos.Name
		key   uint64
	}
	owned := map[rowKey]bool{}
	for _, op := range owner.DBOps {
		if op.Contract == s.self && op.Action == action && op.Kind == chain.DBWrite {
			owned[rowKey{op.Table, op.Key}] = true
		}
	}
	for _, op := range tamper.DBOps {
		if op.Contract == s.self && op.Action == action && op.Kind == chain.DBWrite &&
			owned[rowKey{op.Table, op.Key}] {
			s.stateTamperHit = true
		}
	}
}

// ObserveOrderOutcome feeds the transaction-ordering scenario: the same
// set of independently authorized transactions executed in two orders on
// two fresh chains (with block state frozen, so tapos cannot masquerade
// as ordering dependence). Each outcome string canonically encodes the
// per-actor commit results and the victim's database dump; any divergence
// means the contract's observable behaviour depends on transaction order.
func (s *Scanner) ObserveOrderOutcome(forward, reversed string) {
	if forward != reversed {
		s.orderDepHit = true
	}
}

// ObserveNotifyContext feeds the inter-contract call scenario: the victim
// traces produced while a malicious notifier relays attacker actions, so
// every trace here runs with code naming the foreign contract. The
// contract is vulnerable if it performs an inline action send in that
// context — privileged logic was reachable through a contract boundary
// the attacker controls.
func (s *Scanner) ObserveNotifyContext(traces []trace.Trace) {
	if !s.apis.HasSendInline {
		return
	}
	for i := range traces {
		for _, ev := range traces[i].Events {
			if ev.Kind == trace.HookCall && uint32(ev.Operand) == s.apis.SendInline {
				s.crossContractHit = true
			}
		}
	}
}

// Report produces the final per-class verdict. The Fake Notif verdict is
// the timeout-closed form of §3.5: if the guard was never observed by the
// end of fuzzing, the contract is flagged.
func (s *Scanner) Report() *Report {
	r := NewReport()
	r.Vulnerable[contractgen.ClassFakeEOS] = s.fakeEOSHit
	r.Vulnerable[contractgen.ClassFakeNotif] = s.fakeNotifHit && !s.guardSeen
	r.Vulnerable[contractgen.ClassMissAuth] = s.missAuthHit
	r.Vulnerable[contractgen.ClassBlockinfoDep] = s.blockinfoHit
	r.Vulnerable[contractgen.ClassRollback] = s.rollbackHit
	r.Vulnerable[contractgen.ClassStateTamper] = s.stateTamperHit
	r.Vulnerable[contractgen.ClassOrderDep] = s.orderDepHit
	r.Vulnerable[contractgen.ClassCrossContract] = s.crossContractHit
	return r
}
