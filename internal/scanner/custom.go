package scanner

import (
	"repro/internal/trace"
	"repro/internal/wasm"
)

// CustomDetector is the extension interface of paper §5: new bug detectors
// plug in by (1) observing the traces Engine's payloads produce and
// (2) deciding whether the exploit event occurred. Engine feeds every
// target trace to every registered detector.
type CustomDetector interface {
	// Name labels the detector in reports.
	Name() string
	// Observe inspects one trace of the fuzzing target. The APISets give
	// the import-index view of the host functions.
	Observe(tr *trace.Trace, apis APISets)
	// Vulnerable reports the verdict accumulated so far.
	Vulnerable() bool
}

// customs is managed by the Scanner.
func (s *Scanner) AddCustom(d CustomDetector) { s.customs = append(s.customs, d) }

// ObserveCustom feeds traces to the registered custom detectors.
func (s *Scanner) ObserveCustom(traces []trace.Trace) {
	for i := range traces {
		for _, d := range s.customs {
			d.Observe(&traces[i], s.apis)
		}
	}
}

// CustomResults returns the per-detector verdicts.
func (s *Scanner) CustomResults() map[string]bool {
	out := make(map[string]bool, len(s.customs))
	for _, d := range s.customs {
		out[d.Name()] = d.Vulnerable()
	}
	return out
}

// APICallDetector is a ready-made CustomDetector that flags any executed
// call to one of the named host APIs — the shape of the paper's
// BlockinfoDep and Rollback oracles, usable for new API families (e.g.
// current_time as a randomness source) without writing trace-walking code.
type APICallDetector struct {
	// Label is the detector name.
	Label string
	// APIs is the set of import names that constitute the exploit event.
	APIs map[string]bool

	resolved map[uint32]bool
	module   *wasm.Module
	hit      bool
}

// NewAPICallDetector builds a detector for the given import names, resolved
// against the target module.
func NewAPICallDetector(label string, m *wasm.Module, apis ...string) *APICallDetector {
	d := &APICallDetector{Label: label, APIs: map[string]bool{}, resolved: map[uint32]bool{}}
	for _, a := range apis {
		d.APIs[a] = true
	}
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternalFunc {
			continue
		}
		if d.APIs[imp.Name] {
			d.resolved[idx] = true
		}
		idx++
	}
	return d
}

// Name implements CustomDetector.
func (d *APICallDetector) Name() string { return d.Label }

// Observe implements CustomDetector.
func (d *APICallDetector) Observe(tr *trace.Trace, apis APISets) {
	for _, ev := range tr.Events {
		if ev.Kind == trace.HookCall && d.resolved[uint32(ev.Operand)] {
			d.hit = true
			return
		}
	}
}

// Vulnerable implements CustomDetector.
func (d *APICallDetector) Vulnerable() bool { return d.hit }
