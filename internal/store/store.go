// Package store is the durable tier of the memoization layer: a
// disk-backed, content-addressed key/value store shared across processes
// and restarts. internal/memo's in-memory shards die with the process;
// this store is what lets a restarted analysis daemon — or a second
// process pointed at the same directory — start warm, answering solver
// queries it has proven before instead of re-running DPLL.
//
// Integrity contract: a disk entry can never poison a verdict. Every
// entry is a versioned file whose payload rides behind a magic+version
// tag and an IEEE CRC32; a read that fails any check (wrong magic, wrong
// version, checksum mismatch, short file) deletes the entry, increments
// the Corrupt counter, and reports a plain cache miss — the caller
// recomputes, exactly as if the entry had never existed. Keys are
// 32-byte content hashes (the memo layer's canonical keys), so a stale
// or truncated value can only ever be detected, never silently served.
//
// Layout: dir/<tier>/<hh>/<hex key>.v<version> — one file per entry,
// fanned out by the key's first byte so directories stay small. Writes
// are atomic (temp file + rename), so concurrent processes sharing the
// directory see whole entries or nothing.
//
// Eviction is LRU under a byte budget: an in-memory index (rebuilt from
// the directory on Open, ordered by file mtime) tracks sizes and
// recency; when a Put pushes the total over MaxBytes, least-recently-used
// entries are unlinked until it fits. Get refreshes recency in memory and
// touches the file mtime so recency survives restarts. Evicting never
// changes results — a dropped entry only means the work is done again.
package store

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// CurrentVersion stamps entry filenames. Bump it when an encoded payload
// format changes: old-version files are simply invisible (cache misses),
// so no migration is ever needed.
const CurrentVersion = 1

// DefaultMaxBytes is the default eviction budget (64 MiB — roughly two
// orders of magnitude more solver verdicts than a full wild sweep
// produces, while staying trivial to host).
const DefaultMaxBytes = 64 << 20

// magic tags every entry file; the byte after it is the format version.
var magic = [3]byte{'W', 'S', 'S'}

// Options configures Open.
type Options struct {
	// Dir is the store's root directory (created if missing).
	Dir string
	// MaxBytes is the LRU eviction budget over payload+header bytes.
	// 0 uses DefaultMaxBytes; negative disables eviction.
	MaxBytes int64
}

// Stats are cumulative store counters. Counters are reporting-only; they
// feed /stats and campaign reports, never results.
type Stats struct {
	Hits      int64
	Misses    int64
	Corrupt   int64 // reads rejected by magic/version/CRC validation
	Evictions int64
	Writes    int64
	// Bytes and Entries describe the current resident set.
	Bytes   int64
	Entries int
}

// String renders the counters in the campaign-report style.
func (s Stats) String() string {
	return fmt.Sprintf("disk hits=%d misses=%d corrupt=%d evictions=%d writes=%d resident=%d entries (%d bytes)",
		s.Hits, s.Misses, s.Corrupt, s.Evictions, s.Writes, s.Entries, s.Bytes)
}

type entryKey struct {
	tier string
	key  [32]byte
}

// lruItem is an LRU list element's value. The element carries its own
// size so the list — not the map — is the source of truth for the byte
// total: removing any element, even one the map no longer indexes,
// adjusts s.bytes correctly and eviction always makes progress.
type lruItem struct {
	ek   entryKey
	size int64
}

// Store is an open disk store. All methods are safe for concurrent use
// within a process; across processes, atomic writes plus read validation
// keep sharing safe (a race can at worst manufacture a miss).
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[entryKey]*list.Element // key -> its element in lru
	lru     *list.List                 // of lruItem; front = most recently used
	bytes   int64

	hits, misses, corrupt, evictions, writes int64
}

// Open opens (or creates) the store rooted at opts.Dir and rebuilds the
// LRU index from the directory contents, oldest-first by mtime.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required") //wasai:rawerr config validation
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      opts.Dir,
		maxBytes: maxBytes,
		entries:  map[entryKey]*list.Element{},
		lru:      list.New(),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

var (
	sharedMu sync.Mutex
	//wasai:localcache registry of open handles by directory, not a data cache
	sharedStores = map[string]*Store{}
)

// OpenShared returns one process-wide Store per directory: a daemon and
// an in-process campaign pointed at the same path share one index (two
// independent indexes over one directory would fight over eviction).
func OpenShared(opts Options) (*Store, error) {
	abs, err := filepath.Abs(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s, ok := sharedStores[abs]; ok {
		return s, nil
	}
	opts.Dir = abs
	s, err := Open(opts)
	if err != nil {
		return nil, err
	}
	sharedStores[abs] = s
	return s, nil
}

// scan rebuilds the index from disk, ordering the LRU by mtime so
// recency survives restarts.
func (s *Store) scan() error {
	type found struct {
		ek    entryKey
		size  int64
		mtime time.Time
	}
	var all []found
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			// A crash between Put's WriteFile and Rename leaves a temp
			// file behind. It must never be indexed (the rename is what
			// publishes an entry), so delete it here.
			os.Remove(path)
			return nil
		}
		rel, err := filepath.Rel(s.dir, path)
		if err != nil {
			return nil
		}
		tier, key, version, ok := parseEntryPath(rel)
		if !ok {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		if version != CurrentVersion {
			// A leftover from an older format: count it corrupt-on-arrival
			// and remove it — it can never be read again.
			os.Remove(path)
			s.corrupt++
			return nil
		}
		all = append(all, found{entryKey{tier, key}, info.Size(), info.ModTime()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		if old, ok := s.entries[f.ek]; ok {
			// One key must own exactly one element — a divergent pair
			// would orphan an element and stall eviction. WalkDir visits
			// each path once, so this only guards against parse overlap.
			s.removeElemLocked(old, false)
		}
		s.entries[f.ek] = s.lru.PushFront(lruItem{ek: f.ek, size: f.size})
		s.bytes += f.size
	}
	return nil
}

// parseEntryPath recognizes "<tier>/<hh>/<hexkey>.v<version>". The
// version suffix must be digits only, consumed in full: a lax scan here
// once indexed "<hexkey>.v1.tmp" crash leftovers as live entries,
// creating two list elements for one key and stalling eviction.
func parseEntryPath(rel string) (tier string, key [32]byte, version int, ok bool) {
	parts := strings.Split(filepath.ToSlash(rel), "/")
	if len(parts) != 3 {
		return "", key, 0, false
	}
	tier = parts[0]
	name := parts[2] // <64 hex chars>.v<digits>
	if len(name) < 67 || name[64] != '.' || name[65] != 'v' {
		return "", key, 0, false
	}
	raw, err := hex.DecodeString(name[:64])
	if err != nil || len(raw) != 32 {
		return "", key, 0, false
	}
	copy(key[:], raw)
	for i := 66; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return "", key, 0, false
		}
	}
	version, err = strconv.Atoi(name[66:])
	if err != nil {
		return "", key, 0, false
	}
	return tier, key, version, true
}

// path returns the entry file path for (tier, key).
func (s *Store) path(tier string, key [32]byte) string {
	hexKey := hex.EncodeToString(key[:])
	return filepath.Join(s.dir, tier, hexKey[:2], fmt.Sprintf("%s.v%d", hexKey, CurrentVersion))
}

// Get returns the payload stored under (tier, key). A missing entry is a
// miss; an entry that fails validation is deleted, counted in Corrupt,
// and reported as a miss — corruption degrades to recomputation, never
// to a wrong answer.
func (s *Store) Get(tier string, key [32]byte) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	ek := entryKey{tier, key}
	path := s.path(tier, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.dropLocked(ek, false)
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		os.Remove(path)
		s.mu.Lock()
		s.dropLocked(ek, false)
		s.corrupt++
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	if elem, ok := s.entries[ek]; ok {
		s.lru.MoveToFront(elem)
	} else {
		// Another process wrote it after our scan: adopt it.
		s.entries[ek] = s.lru.PushFront(lruItem{ek: ek, size: int64(len(data))})
		s.bytes += int64(len(data))
	}
	s.hits++
	s.mu.Unlock()
	// Touch the mtime so LRU recency survives a restart's rescan.
	//wasai:nondet recency metadata for eviction ordering only, never results
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

// Put stores payload under (tier, key). Content-addressed: if the entry
// already exists it is left alone (same key ⇒ same content). Write
// failures are silent by design — the store is an accelerator, and a
// full disk must not fail an analysis.
func (s *Store) Put(tier string, key [32]byte, payload []byte) {
	if s == nil {
		return
	}
	ek := entryKey{tier, key}
	s.mu.Lock()
	if _, ok := s.entries[ek]; ok {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	path := s.path(tier, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data := encodeEntry(payload)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}

	s.mu.Lock()
	if _, ok := s.entries[ek]; !ok {
		s.entries[ek] = s.lru.PushFront(lruItem{ek: ek, size: int64(len(data))})
		s.bytes += int64(len(data))
	}
	s.writes++
	s.evictLocked()
	s.mu.Unlock()
}

// evictLocked unlinks least-recently-used entries until the resident set
// fits the byte budget.
func (s *Store) evictLocked() {
	if s.maxBytes < 0 {
		return
	}
	for s.bytes > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		it := back.Value.(lruItem)
		os.Remove(s.path(it.ek.tier, it.ek.key))
		s.removeElemLocked(back, true)
	}
}

// dropLocked removes the entry indexed under ek, if any.
func (s *Store) dropLocked(ek entryKey, evicted bool) {
	if elem, ok := s.entries[ek]; ok {
		s.removeElemLocked(elem, evicted)
	}
}

// removeElemLocked removes one LRU element (evicted=true counts it).
// Bytes are adjusted from the element's own recorded size, and the map
// entry is deleted only when this element is the one it indexes — so
// even if list and map ever diverged, every removal would still shrink
// the list and the byte total, and eviction could never spin.
func (s *Store) removeElemLocked(elem *list.Element, evicted bool) {
	it := elem.Value.(lruItem)
	s.lru.Remove(elem)
	s.bytes -= it.size
	if cur, ok := s.entries[it.ek]; ok && cur == elem {
		delete(s.entries, it.ek)
	}
	if evicted {
		s.evictions++
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Corrupt:   s.corrupt,
		Evictions: s.evictions,
		Writes:    s.writes,
		Bytes:     s.bytes,
		Entries:   len(s.entries),
	}
}

// encodeEntry frames a payload: magic, version byte, CRC32 (IEEE, little
// endian) of the payload, payload.
func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+8)
	out = append(out, magic[:]...)
	out = append(out, byte(CurrentVersion))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	out = append(out, crc[:]...)
	return append(out, payload...)
}

// decodeEntry validates a framed entry and returns its payload.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < 8 {
		return nil, false
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] {
		return nil, false
	}
	if data[3] != byte(CurrentVersion) {
		return nil, false
	}
	payload := data[8:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, false
	}
	return payload, true
}
