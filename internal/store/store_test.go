package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func key(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 0xff, 0}
	s.Put("solver", key("q1"), payload)
	got, ok := s.Get("solver", key("q1"))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %v, %v; want %v, true", got, ok, payload)
	}
	if _, ok := s.Get("solver", key("q2")); ok {
		t.Fatal("Get of an absent key hit")
	}
	if _, ok := s.Get("unsat", key("q1")); ok {
		t.Fatal("tiers are not isolated")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("solver", key("q"), []byte("verdict"))

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("solver", key("q"))
	if !ok || string(got) != "verdict" {
		t.Fatalf("second open missed the entry: %q %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("rescan stats = %+v", st)
	}
}

// TestBitFlipDegradesToMiss is the corruption-hygiene satellite: flip one
// payload bit on disk and the read must become a counted miss (Corrupt
// incremented, file removed) — never a wrong value.
func TestBitFlipDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("q")
	s.Put("solver", k, []byte("the truth"))
	path := s.path("solver", k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for flip := 0; flip < len(data); flip++ {
		corrupted := append([]byte{}, data...)
		corrupted[flip] ^= 0x01
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get("solver", k)
		if ok {
			t.Fatalf("bit flip at offset %d still served a value: %q", flip, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("bit flip at offset %d: corrupt entry not removed", flip)
		}
		// Re-seed for the next flip position.
		s.Put("solver", k, []byte("the truth"))
	}
	if st := s.Stats(); st.Corrupt != int64(len(data)) {
		t.Errorf("Corrupt = %d, want %d (one per flip)", st.Corrupt, len(data))
	}
}

// TestTruncatedEntryDegradesToMiss: a short file (torn write from a
// crashed process without the atomic rename, or filesystem damage) is a
// counted miss too.
func TestTruncatedEntryDegradesToMiss(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	k := key("q")
	s.Put("solver", k, []byte("0123456789"))
	path := s.path("solver", k)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("solver", k); ok {
		t.Fatal("truncated entry served a value")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestVersionMismatchIsMiss: entries written under another format version
// are invisible — removed at scan time and counted corrupt, never read.
func TestVersionMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("q")
	// Forge a version-99 entry file alongside a real one.
	real := s.path("solver", k)
	s.Put("solver", k, []byte("v1"))
	forged := real[:len(real)-1] + "99" // .v1 → .v99
	if err := os.WriteFile(forged, []byte("WSS\x63xxxxold-format"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(forged); !os.IsNotExist(err) {
		t.Error("old-version entry survived the rescan")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	if got, ok := s2.Get("solver", k); !ok || string(got) != "v1" {
		t.Errorf("current-version entry lost: %q %v", got, ok)
	}

	// And a current-version *file* whose version byte lies is rejected on read.
	data, _ := os.ReadFile(real)
	data[3] = 2
	if err := os.WriteFile(real, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("solver", k); ok {
		t.Error("version-mismatched payload served a value")
	}
}

// TestLRUByteBudgetEviction: pushing past MaxBytes evicts the least
// recently used entries, and a Get refreshes recency.
func TestLRUByteBudgetEviction(t *testing.T) {
	// Each entry: 8-byte header + 100-byte payload = 108 bytes.
	s, err := Open(Options{Dir: t.TempDir(), MaxBytes: 3 * 108})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 100)
	for i := 0; i < 3; i++ {
		s.Put("t", key(fmt.Sprintf("k%d", i)), payload)
	}
	// Touch k0 so k1 becomes LRU.
	if _, ok := s.Get("t", key("k0")); !ok {
		t.Fatal("k0 missing before eviction")
	}
	s.Put("t", key("k3"), payload)
	if _, ok := s.Get("t", key("k1")); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, want := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get("t", key(want)); !ok {
			t.Errorf("%s evicted, want k1 only", want)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*108 {
		t.Errorf("resident %d bytes, budget %d", st.Bytes, 3*108)
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	k := key("q")
	s.Put("t", k, []byte("v"))
	s.Put("t", k, []byte("v"))
	if st := s.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats after duplicate Put = %+v", st)
	}
}

func TestNilStoreIsOff(t *testing.T) {
	var s *Store
	if _, ok := s.Get("t", key("k")); ok {
		t.Fatal("nil store hit")
	}
	s.Put("t", key("k"), []byte("v")) // must not panic
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}

func TestOpenShared(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shared")
	a, err := OpenShared(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenShared(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("OpenShared returned two handles for one directory")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), MaxBytes: 40 * 120})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("w%d-i%d", w, i%20))
				s.Put("t", k, bytes.Repeat([]byte{byte(w)}, 64))
				s.Get("t", k)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

// TestParseEntryPathStrict: the version suffix must be digits only,
// consumed in full. A lax parse once accepted "<key>.v1.tmp" crash
// leftovers as live entries (see TestScanIgnoresTempLeftovers).
func TestParseEntryPathStrict(t *testing.T) {
	hexKey := fmt.Sprintf("%064x", 42)
	cases := []struct {
		name    string
		ok      bool
		version int
	}{
		{hexKey + ".v1", true, 1},
		{hexKey + ".v12", true, 12},
		{hexKey + ".v1.tmp", false, 0},
		{hexKey + ".v1x", false, 0},
		{hexKey + ".v", false, 0},
		{hexKey + ".v+1", false, 0},
		{hexKey + ".v-1", false, 0},
		{hexKey + ".v 1", false, 0},
		{hexKey + ".tmp", false, 0},
	}
	for _, c := range cases {
		_, _, version, ok := parseEntryPath("t/aa/" + c.name)
		if ok != c.ok || version != c.version {
			t.Errorf("parseEntryPath(%q) = (version=%d, ok=%v), want (version=%d, ok=%v)",
				c.name, version, ok, c.version, c.ok)
		}
	}
}

// TestScanIgnoresTempLeftovers: a crash between Put's WriteFile and
// Rename leaves "<key>.v1.tmp" next to (or instead of) the real entry.
// The rescan must delete it and index only the published entry — the old
// lax parse indexed both, creating two LRU elements for one key, which
// made eviction spin forever holding the store mutex.
func TestScanIgnoresTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("survivor")
	payload := bytes.Repeat([]byte{1}, 100)
	s.Put("t", k, payload)

	// Simulate the crash leftover: the temp file beside the real entry.
	real := s.path("t", k)
	if err := os.WriteFile(real+".tmp", encodeEntry(payload), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen with a budget tight enough that the duplicate (if indexed)
	// would double-count bytes and force eviction into the orphan spin.
	s2, err := Open(Options{Dir: dir, MaxBytes: 108})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes != 108 {
		t.Fatalf("after rescan with .tmp leftover: %+v, want 1 entry / 108 bytes", st)
	}
	if _, err := os.Stat(real + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("scan left the .tmp file behind (stat err: %v)", err)
	}

	// The reproduction from the review: under eviction pressure a
	// divergent index made Put hang indefinitely. This must return.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			s2.Put("t", key(fmt.Sprintf("fill%d", i)), payload)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Put hung under eviction pressure after rescan with .tmp leftover")
	}
	if st := s2.Stats(); st.Bytes > 108 {
		t.Errorf("resident %d bytes, budget 108", st.Bytes)
	}
}

// TestEvictionSurvivesIndexDivergence: even if the LRU list and the
// entries map diverge (an element the map does not index), eviction must
// remove the orphan with correct byte accounting instead of spinning.
func TestEvictionSurvivesIndexDivergence(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), MaxBytes: 108})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{2}, 100)
	s.Put("t", key("a"), payload)

	// Manufacture the divergence the old code could not escape: an LRU
	// element carrying bytes that no map entry indexes.
	s.mu.Lock()
	s.lru.PushBack(lruItem{ek: entryKey{tier: "t", key: key("orphan")}, size: 108})
	s.bytes += 108
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.Put("t", key("b"), payload) // over budget: must evict and return
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Put hung: eviction did not remove the orphaned LRU element")
	}
	if st := s.Stats(); st.Bytes > 108 {
		t.Errorf("orphan bytes not reclaimed: resident %d, budget 108", st.Bytes)
	}
}
