package campaign

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestKillResumeDigestIdentity is the tentpole resilience guarantee: a
// campaign killed mid-flight and resumed from its journal produces digests
// byte-identical to an uninterrupted run's, at every worker count.
func TestKillResumeDigestIdentity(t *testing.T) {
	const nJobs = 12
	mk := func() []Job { return testJobs(t, nJobs, 30, 21) }

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Config{Workers: workers, BaseSeed: 5}
			ref, err := Run(context.Background(), mk(), cfg)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Interrupted run: cancel the engine context after a few results
			// have streamed out, simulating a mid-campaign kill. Post-cancel
			// submissions fail and in-flight jobs die with context errors;
			// neither reaches the journal.
			journal := filepath.Join(t.TempDir(), "campaign.jsonl")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			icfg := cfg
			icfg.Journal = journal
			e, err := Start(ctx, icfg)
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			go func() {
				defer e.Close() // always: workers drain until the queue closes
				jobs := mk()
				for i := range jobs {
					jobs[i].ID = i
					if err := e.Submit(jobs[i]); err != nil {
						return // engine cancelled mid-submission; expected
					}
				}
			}()
			completed := 0
			for jr := range e.Results() {
				if jr.Err == nil {
					completed++
				}
				if completed == 4 {
					cancel()
				}
			}
			if completed < 4 {
				t.Fatalf("interrupted run completed only %d jobs before draining", completed)
			}

			// Resumed run over the same population.
			rcfg := cfg
			rcfg.Journal = journal
			rcfg.Resume = true
			rep, err := Run(context.Background(), mk(), rcfg)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if rep.Replayed == 0 {
				t.Fatal("resumed run replayed nothing from the journal")
			}
			if rep.Replayed >= nJobs {
				t.Fatalf("resumed run replayed all %d jobs; the kill did not interrupt anything", rep.Replayed)
			}
			if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("FindingsDigest diverged after kill+resume:\n got: %s\nwant: %s", got, want)
			}
			if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
				t.Errorf("StateDigest diverged after kill+resume:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestJournalCorruptionTolerance tears the journal's tail and injects a
// garbage line — the shape a SIGKILL mid-write leaves behind. Resume must
// drop the damaged records, re-run those jobs, and still converge on the
// uninterrupted digests.
func TestJournalCorruptionTolerance(t *testing.T) {
	const nJobs = 8
	mk := func() []Job { return testJobs(t, nJobs, 25, 17) }
	cfg := Config{Workers: 2, BaseSeed: 9, Journal: filepath.Join(t.TempDir(), "j.jsonl")}

	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}

	data, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Count(data, []byte("\n")) != nJobs+1 { // header + one line per job
		t.Fatalf("journal has %d lines, want %d", bytes.Count(data, []byte("\n")), nJobs+1)
	}
	// Tear the final record mid-line, then append garbage and a lying
	// record that carries no valid CRC frame — the WAL must reject both.
	torn := data[:len(data)-10]
	torn = append(torn, []byte("\n{not json at all\n")...)
	torn = append(torn, []byte(`00000001 {"id":0,"name":"evil"}`+"\n")...)
	if err := os.WriteFile(cfg.Journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed != nJobs-1 {
		t.Errorf("replayed %d jobs, want %d (the torn record must re-run, the lying one must be dropped)",
			rep.Replayed, nJobs-1)
	}
	if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
		t.Errorf("StateDigest diverged after corruption+resume:\n got: %s\nwant: %s", got, want)
	}
}

// TestJournalTornFinalLineCrash is the journal-durability crash test: a
// SIGKILL mid-write leaves a half-frame at EOF. The resume must (1) not
// trust it, (2) physically truncate it so post-resume appends never share
// a line with the torn bytes, and (3) re-run exactly the torn job,
// converging on the uninterrupted digests.
func TestJournalTornFinalLineCrash(t *testing.T) {
	const nJobs = 6
	mk := func() []Job { return testJobs(t, nJobs, 25, 13) }
	cfg := Config{Workers: 2, BaseSeed: 4, Journal: filepath.Join(t.TempDir(), "j.jsonl"), JournalSync: 1}

	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	data, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-line, newline and all: the classic shape
	// of a write interrupted by SIGKILL.
	torn := data[:len(data)-7]
	if err := os.WriteFile(cfg.Journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed != nJobs-1 {
		t.Errorf("replayed %d jobs, want %d (the torn record must re-run)", rep.Replayed, nJobs-1)
	}
	if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
		t.Errorf("StateDigest diverged after torn-line crash+resume:\n got: %s\nwant: %s", got, want)
	}
	// The resume repaired the file: the torn line was physically cut off
	// before the re-run job's record was appended, so a re-open finds a
	// fully valid journal — nothing dropped, nothing truncated.
	log, replay, err := wal.Open(cfg.Journal, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	if replay.Dropped != 0 || replay.Truncated != 0 {
		t.Errorf("repaired journal still has dropped=%d truncated=%d", replay.Dropped, replay.Truncated)
	}
	if len(replay.Records) != nJobs {
		t.Errorf("repaired journal holds %d records, want %d", len(replay.Records), nJobs)
	}
}

// TestResumeBaseSeedMismatch: a journal written under one seed derivation
// must refuse to resume under another — silently mixing two campaigns'
// results would be worse than failing.
func TestResumeBaseSeedMismatch(t *testing.T) {
	cfg := Config{Workers: 2, BaseSeed: 1, Journal: filepath.Join(t.TempDir(), "j.jsonl")}
	if _, err := Run(context.Background(), testJobs(t, 2, 10, 3), cfg); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	cfg.BaseSeed = 2
	cfg.Resume = true
	_, err := Run(context.Background(), testJobs(t, 2, 10, 3), cfg)
	if err == nil || !strings.Contains(err.Error(), "base seed") {
		t.Fatalf("resume under a different base seed: got %v, want base-seed refusal", err)
	}
}

// TestResumeRequiresJournal: Resume without a Journal path is a
// configuration error, caught before any job runs.
func TestResumeRequiresJournal(t *testing.T) {
	if _, err := Start(context.Background(), Config{Resume: true}); err == nil {
		t.Fatal("Start accepted Resume without a Journal path")
	}
}

// TestFreshRunTruncatesJournal: without Resume, an existing journal at the
// configured path is overwritten, not appended to (stale records from an
// unrelated campaign must not leak into this one's checkpoint).
func TestFreshRunTruncatesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("stale garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), testJobs(t, 2, 10, 3), Config{Workers: 1, Journal: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("stale garbage")) {
		t.Fatal("fresh journaled run kept the stale journal contents")
	}
}
