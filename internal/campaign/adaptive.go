package campaign

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/fuzz"
	"repro/internal/memo"
	"repro/internal/schedule"
)

// adaptive.go is the two-phase adaptive campaign driver behind
// Config.Adaptive (ROADMAP item 3: findings-per-CPU-second as the
// scheduling objective). Phase 1 runs every job with the intra-job power
// schedule, stopping early at saturation; at the barrier the fuel ledger
// (schedule.Reallocate) pools the saturated jobs' unspent iterations and
// regrants them to still-progressing jobs; phase 2 resumes the granted
// fuzzers — same coverage, seed energies, DBG and scanner state — and
// finishes everyone (scenario pass + result).
//
// Determinism: the grant a job receives is a pure function of the phase-1
// summaries, which are themselves pure functions of (job, seed) — so the
// campaign is digest-identical at any worker count. Kill+resume holds
// because records are journaled only after a job is final (never between
// phases) and every executed job's record carries its phase-1 summary, so
// a resumed run recomputes the identical ledger from replayed summaries
// plus live ones. (A consequence: an adaptive campaign must resume from an
// adaptive journal — records without phase summaries contribute nothing to
// the ledger, as with a job that failed before completing phase 1.)

// jobConfig resolves the effective fuzz configuration of one attempt — the
// per-attempt derivation shared by the streaming engine and the adaptive
// driver.
func jobConfig(job Job, attempt int, cc Config, mc *memo.Cache, verdicts *verdictCache) (fuzz.Config, string) {
	cfg := job.Config
	if cfg.Seed == 0 {
		cfg.Seed = cc.BaseSeed + int64(job.ID)
	}
	cfg, mode := degrade(cfg, attempt)
	if cc.Faults != nil {
		cfg.Faults = cc.Faults.For(job.ID, attempt)
	}
	if cfg.Faults == nil {
		// Faulted attempts run without the memo (the solver pool enforces
		// the same rule independently): a result shaped by an injected
		// fault must never reach the shared cache, and no hit may be
		// served — or counted — on a faulted attempt.
		cfg.Memo = mc.SolverMemo()
	}
	if cc.Incremental {
		// Campaign-wide opt-in; the solver pool drops the pre-pass on
		// faulted attempts so the injector's call count is unchanged.
		cfg.Incremental = true
	}
	if cc.FastVM {
		cfg.FastVM = true
	}
	if cc.Adaptive {
		cfg.Adaptive = true
		if cfg.SaturationWindow == 0 {
			cfg.SaturationWindow = cc.SaturationWindow
		}
	}
	if verdicts != nil && cfg.Static != nil {
		// A proven-positive job skips the static fuel/solver budget raise:
		// the positive witness is a concrete run inside the base budget, so
		// the extra headroom the candidate score would buy cannot be needed
		// to surface the finding.
		if rep := verdicts.report(job); rep != nil && rep.AnyPositive() {
			cfg.Static = nil
		}
	}
	return cfg, mode
}

// liveJob carries one job across the two phases: the still-open fuzzer and
// its phase-1 summary between the barrier, and the final JobResult after.
type liveJob struct {
	job   Job
	jr    JobResult
	f     *fuzz.Fuzzer     // non-nil after a successful phase 1
	phase fuzz.PhaseReport // phase-1 summary (ledger input)
	score int              // static triage score (ledger ranking)
	rec   *journalRecord   // non-nil when replayed from a resume journal
	final bool             // jr is complete; the job skips phase 2
}

// ledgerPhase derives the job's fuel-ledger input: from the live phase-1
// summary, or — on resume — from the journaled one.
func (lj *liveJob) ledgerPhase() (schedule.JobPhase, bool) {
	if lj.rec != nil {
		s := lj.rec.Sched
		if s == nil || !s.Executed {
			return schedule.JobPhase{}, false
		}
		return schedule.JobPhase{
			ID:          lj.job.ID,
			Executed:    true,
			Saturated:   s.P1Saturated,
			FuelUnspent: s.Unspent,
			StaticScore: s.Score,
			Coverage:    s.P1Coverage,
			Iterations:  s.P1Iters,
			MaxGrant:    lj.job.Config.Iterations,
		}, true
	}
	if lj.f == nil {
		return schedule.JobPhase{}, false
	}
	return schedule.JobPhase{
		ID:          lj.job.ID,
		Executed:    true,
		Saturated:   lj.phase.Saturated,
		FuelUnspent: lj.phase.FuelUnspent,
		StaticScore: lj.score,
		Coverage:    lj.phase.Coverage,
		Iterations:  lj.phase.Iterations,
		// A job can at most double its budget: the cap keeps one deep
		// contract from absorbing the whole pool.
		MaxGrant: lj.job.Config.Iterations,
	}, true
}

// adaptiveRun bundles the driver's shared state.
type adaptiveRun struct {
	cfg      Config
	done     map[int]*journalRecord
	jw       *journalWriter
	memo     *memo.Cache
	memoBase memo.Stats
	triage   *triageCache
	verdicts *verdictCache
}

// runAdaptive is Run's Config.Adaptive implementation.
func runAdaptive(ctx context.Context, jobs []Job, cfg Config) (*Report, error) {
	start := time.Now() //wasai:nondet Report.Wall is reporting-only, never fed back
	done, jw, err := openJournal(cfg)
	if err != nil {
		return nil, err
	}
	a := &adaptiveRun{cfg: cfg, done: done, jw: jw}
	a.memo = cfg.memoCache()
	a.memoBase = a.memo.Snapshot()
	if cfg.StaticTriage {
		a.triage = newTriageCache(a.memo)
	}
	if cfg.Verdicts {
		a.verdicts = newVerdictCache(a.memo)
	}

	order := make([]Job, len(jobs))
	for i := range jobs {
		order[i] = jobs[i]
		order[i].ID = i
	}
	if a.triage != nil || a.verdicts != nil {
		order = orderJobs(order, a.triage, a.verdicts)
	}

	bail := func(err error) (*Report, error) {
		if a.jw != nil {
			a.jw.Close()
		}
		return nil, fmt.Errorf("campaign: %w", err)
	}

	// Phase 1: every job up to its own budget (or saturation).
	live := make([]*liveJob, len(jobs))
	a.each(ctx, order, func(job Job) { live[job.ID] = a.phase1(ctx, job) })
	if err := ctx.Err(); err != nil {
		return bail(err)
	}

	// Fuel-ledger barrier: a pure function of the phase-1 summaries.
	phases := make([]schedule.JobPhase, 0, len(live))
	for _, lj := range live {
		if p, ok := lj.ledgerPhase(); ok {
			phases = append(phases, p)
		}
	}
	grants, stats := schedule.Reallocate(phases)

	// Phase 2: resume granted fuzzers, finish everyone still open.
	var pending []Job
	for _, job := range order {
		if !live[job.ID].final {
			pending = append(pending, job)
		}
	}
	a.each(ctx, pending, func(job Job) { a.phase2(ctx, live[job.ID], grants[job.ID]) })
	if err := ctx.Err(); err != nil {
		return bail(err)
	}

	results := make([]JobResult, len(jobs))
	for i, lj := range live {
		results[i] = lj.jr
		a.record(ctx, lj, grants[lj.job.ID])
	}
	if a.jw != nil {
		a.jw.Close()
		if err := a.jw.Err(); err != nil {
			// The campaign finished but its checkpoint is unreliable;
			// surfacing that beats handing back a journal that resumes
			// wrong.
			return nil, err
		}
	}
	//wasai:nondet reporting-only wall-clock aggregate
	rep := Aggregate(results, time.Since(start))
	rep.Sched.FuelReturned = stats.Returned
	rep.Sched.FuelReallocated = stats.Reallocated
	rep.Sched.SaturatedJobs = stats.Saturated
	if a.memo != nil {
		d := a.memo.Snapshot().Sub(a.memoBase)
		rep.Memo = &d
	}
	return rep, nil
}

// each fans jobs over the worker pool and waits for all of them. Every fn
// call writes only its own job's state, so the pool adds no ordering
// effects.
func (a *adaptiveRun) each(ctx context.Context, jobs []Job, fn func(Job)) {
	workers := a.cfg.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan Job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				fn(job)
			}
		}()
	}
loop:
	for _, job := range jobs {
		select {
		case <-ctx.Done():
			break loop
		case ch <- job:
		}
	}
	close(ch)
	wg.Wait()
}

// phase1 decides a job up to the barrier: journal replay, triage and
// verdict skips, then the retry loop around RunPhase. On success the
// fuzzer stays open for phase 2.
func (a *adaptiveRun) phase1(ctx context.Context, job Job) (lj *liveJob) {
	start := time.Now() //wasai:nondet JobResult.Duration is reporting-only, never fed back
	lj = &liveJob{job: job}
	lj.jr.Job = job
	defer func() {
		if r := recover(); r != nil {
			// A panic outside an attempt (triage, bookkeeping) is terminal:
			// attempts carry their own recovery, so this one would repeat.
			lj.f, lj.jr.Result = nil, nil
			lj.jr.Err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
			lj.jr.FailureClass = failure.Panic
			lj.final = true
		}
		lj.jr.Duration = time.Since(start) //wasai:nondet reporting-only duration metric
	}()

	if rec, ok := a.done[job.ID]; ok {
		lj.jr = rec.toResult(job)
		lj.rec = rec
		lj.final = true
		return lj
	}
	if a.triage != nil && skippable(job, a.triage.report(job.Module)) {
		lj.jr = skipResult(job)
		lj.final = true
		return lj
	}
	if a.verdicts != nil && verdictSkippable(job, a.verdicts.report(job)) {
		lj.jr = skipResult(job)
		lj.final = true
		return lj
	}
	if a.triage != nil {
		if rep := a.triage.report(job.Module); rep != nil {
			lj.score = rep.Score()
		}
	}

	maxAttempts := a.cfg.Retry.maxAttempts()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		f, phase, mode, err := a.phase1Attempt(ctx, job, attempt)
		lj.jr.Attempts = attempt + 1
		if err == nil {
			lj.f, lj.phase = f, phase
			lj.jr.DegradedMode = mode
			lj.jr.Err, lj.jr.FailureClass = nil, failure.None
			return lj
		}
		lj.jr.Result = nil
		lj.jr.Err = err
		lj.jr.FailureClass = failure.ClassOf(err)
		if !lj.jr.FailureClass.Retryable() || ctx.Err() != nil {
			break // deterministic failure, or the campaign itself is dying
		}
	}
	lj.final = true
	return lj
}

// phase1Attempt runs one try's phase 1 under the per-attempt deadline and
// panic isolation, returning the open fuzzer.
func (a *adaptiveRun) phase1Attempt(ctx context.Context, job Job, attempt int) (f *fuzz.Fuzzer, phase fuzz.PhaseReport, mode string, err error) {
	defer func() {
		if r := recover(); r != nil {
			f = nil
			err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if a.cfg.JobTimeout > 0 {
		// Each phase gets the full deadline, mirroring the per-attempt
		// deadline of the streaming engine.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.JobTimeout)
		defer cancel()
	}
	var cfg fuzz.Config
	cfg, mode = jobConfig(job, attempt, a.cfg, a.memo, a.verdicts)
	f, err = fuzz.New(job.Module, job.ABI, cfg)
	if err != nil {
		return nil, phase, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	phase, err = f.RunPhase(ctx)
	if err != nil {
		return nil, phase, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	return f, phase, mode, nil
}

// phase2 spends the job's ledger grant and finalizes it. A failure here
// retries the whole job from scratch at the next degradation step, with the
// same grant — the ledger's decision is fixed at the barrier.
func (a *adaptiveRun) phase2(ctx context.Context, lj *liveJob, grant int) {
	start := time.Now() //wasai:nondet JobResult.Duration is reporting-only, never fed back
	defer func() {
		if r := recover(); r != nil {
			lj.jr.Result = nil
			lj.jr.Err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
			lj.jr.FailureClass = failure.Panic
		}
		lj.jr.Duration += time.Since(start) //wasai:nondet reporting-only duration metric
		lj.final = true
	}()

	res, err := a.finishAttempt(ctx, lj.job, lj.f, grant)
	if err == nil {
		lj.jr.Result = res
		lj.jr.Err, lj.jr.FailureClass = nil, failure.None
		return
	}
	lj.jr.Result, lj.jr.Err, lj.jr.FailureClass = nil, err, failure.ClassOf(err)

	maxAttempts := a.cfg.Retry.maxAttempts()
	for lj.jr.FailureClass.Retryable() && ctx.Err() == nil && lj.jr.Attempts < maxAttempts {
		attempt := lj.jr.Attempts
		res, mode, err := a.fullAttempt(ctx, lj.job, attempt, grant)
		lj.jr.Attempts = attempt + 1
		if err == nil {
			lj.jr.Result, lj.jr.DegradedMode = res, mode
			lj.jr.Err, lj.jr.FailureClass = nil, failure.None
			return
		}
		lj.jr.Result, lj.jr.Err, lj.jr.FailureClass = nil, err, failure.ClassOf(err)
	}
}

// finishAttempt resumes an open fuzzer: spend the grant, then the scenario
// pass and result assembly.
func (a *adaptiveRun) finishAttempt(ctx context.Context, job Job, f *fuzz.Fuzzer, grant int) (res *fuzz.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if a.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.JobTimeout)
		defer cancel()
	}
	if grant > 0 {
		if _, err := f.ContinuePhase(ctx, grant); err != nil {
			return nil, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
		}
	}
	res, err = f.Finish(ctx)
	if err != nil {
		return nil, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	return res, nil
}

// fullAttempt is the phase-2 retry path: both phases and the finish in one
// go, on a fresh fuzzer at the attempt's degradation step.
func (a *adaptiveRun) fullAttempt(ctx context.Context, job Job, attempt, grant int) (res *fuzz.Result, mode string, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if a.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.cfg.JobTimeout)
		defer cancel()
	}
	var cfg fuzz.Config
	cfg, mode = jobConfig(job, attempt, a.cfg, a.memo, a.verdicts)
	f, err := fuzz.New(job.Module, job.ABI, cfg)
	if err != nil {
		return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	if _, err := f.RunPhase(ctx); err != nil {
		return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	if grant > 0 {
		if _, err := f.ContinuePhase(ctx, grant); err != nil {
			return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
		}
	}
	res, err = f.Finish(ctx)
	if err != nil {
		return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	return res, mode, nil
}

// record journals one finalized job, attaching the phase-1 summary and the
// grant so a resumed campaign can recompute the identical ledger. The same
// exclusions as the streaming engine apply: replayed jobs are already on
// disk, and cancellation casualties are not outcomes.
func (a *adaptiveRun) record(ctx context.Context, lj *liveJob, grant int) {
	if a.jw == nil || lj.jr.Replayed {
		return
	}
	if lj.jr.Err != nil && ctx.Err() != nil {
		return
	}
	rec := recordOf(lj.jr)
	if lj.f != nil {
		if rec.Sched == nil {
			rec.Sched = &schedRecord{}
		}
		rec.Sched.Executed = true
		rec.Sched.P1Saturated = lj.phase.Saturated
		rec.Sched.Unspent = lj.phase.FuelUnspent
		rec.Sched.Score = lj.score
		rec.Sched.P1Coverage = lj.phase.Coverage
		rec.Sched.P1Iters = lj.phase.Iterations
		rec.Sched.Grant = grant
	}
	a.jw.append(rec)
}
