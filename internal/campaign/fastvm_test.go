package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/memo"
)

// fastvm_test.go holds the engine-level differential for the decoded-IR
// execution engine: Config.FastVM may only ever change execution
// throughput, never digests, and must compose with every other engine
// layer — memoization, static triage, the incremental solver,
// fault-injected retries, and journal kill+resume.

// fastVMDigests runs the same population with the flag off and on and
// requires both digest pairs to match.
func fastVMDigests(t *testing.T, mk func() []Job, cfg Config) (off *Report) {
	t.Helper()
	offCfg, onCfg := cfg, cfg
	offCfg.FastVM = false
	onCfg.FastVM = true
	off, err := Run(context.Background(), mk(), offCfg)
	if err != nil {
		t.Fatalf("fastvm-off run: %v", err)
	}
	on, err := Run(context.Background(), mk(), onCfg)
	if err != nil {
		t.Fatalf("fastvm-on run: %v", err)
	}
	if got, want := on.FindingsDigest(), off.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged under -fastvm:\n got: %s\nwant: %s", got, want)
	}
	if got, want := on.StateDigest(), off.StateDigest(); got != want {
		t.Errorf("StateDigest diverged under -fastvm:\n got: %s\nwant: %s", got, want)
	}
	return off
}

// TestFastVMDigestInvariance is the flag's core contract at every worker
// count the determinism suite uses, cross-checked against a single
// reference so worker count and flag state are both witnessed at once.
func TestFastVMDigestInvariance(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	var refFindings, refState string
	for i, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			off := fastVMDigests(t, mk, Config{Workers: workers, BaseSeed: 7})
			if i == 0 {
				refFindings, refState = off.FindingsDigest(), off.StateDigest()
				return
			}
			if off.FindingsDigest() != refFindings || off.StateDigest() != refState {
				t.Errorf("digests drifted across worker counts")
			}
		})
	}
}

// TestFastVMComposesWithMemoTriageIncremental stacks the engine flag on top
// of cross-job memoization, static triage, and the incremental solver: four
// layers each promise digest invariance, and this is the witness that the
// promises hold together, not just one at a time.
func TestFastVMComposesWithMemoTriageIncremental(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	fastVMDigests(t, mk, Config{
		Workers:      4,
		BaseSeed:     7,
		Memo:         memo.ModeOn,
		StaticTriage: true,
		Incremental:  true,
	})
}

// TestFastVMComposesWithChaos injects faults with retries enabled on both
// sides of the differential. Unlike the memo and the incremental pre-pass,
// the engine flag stays on during faulted attempts — the engines are
// observably identical, so the injector's deterministic host-call count
// lands each fault on the same call either way, and every verdict must be
// unchanged by the flag.
func TestFastVMComposesWithChaos(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	off := fastVMDigests(t, mk, Config{
		Workers:  4,
		BaseSeed: 7,
		Faults:   &faultinject.Plan{Seed: 99, Rate: 0.2},
		Retry:    RetryPolicy{MaxAttempts: 3},
	})
	if off.Failed != 0 {
		t.Fatalf("%d terminal failures at 20%% fault rate with retries", off.Failed)
	}
}

// TestFastVMKillResume kills a fast-engine campaign mid-flight and resumes
// it from the journal: the stitched result must match a fault-free
// fastvm-off reference bit for bit.
func TestFastVMKillResume(t *testing.T) {
	const nJobs = 12
	mk := func() []Job { return testJobs(t, nJobs, 30, 21) }
	cfg := Config{Workers: 4, BaseSeed: 5}
	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fcfg := cfg
	fcfg.FastVM = true
	fcfg.Journal = journal
	e, err := Start(ctx, fcfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		defer e.Close()
		jobs := mk()
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				return // engine cancelled mid-submission; expected
			}
		}
	}()
	completed := 0
	for jr := range e.Results() {
		if jr.Err == nil {
			completed++
		}
		if completed == 4 {
			cancel()
		}
	}
	if completed < 4 {
		t.Fatalf("interrupted run completed only %d jobs before draining", completed)
	}

	rcfg := fcfg
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed == 0 {
		t.Fatal("resumed run replayed nothing from the journal")
	}
	if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged after fastvm kill+resume:\n got: %s\nwant: %s", got, want)
	}
	if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
		t.Errorf("StateDigest diverged after fastvm kill+resume:\n got: %s\nwant: %s", got, want)
	}
}
