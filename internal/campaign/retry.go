package campaign

import (
	"repro/internal/fuzz"
	"repro/internal/wasm/exec"
)

// RetryPolicy bounds how often a failed job is re-attempted. Retries are
// deterministic: whether a job retries depends only on its failure class
// (failure.Class.Retryable), the attempt's configuration is a pure
// function of the attempt number (degrade), and the whole loop runs
// inline in the job's worker — so retried campaigns keep the engine's
// worker-count-invariant results guarantee. There is no backoff: jobs are
// CPU-bound and share no contended resource, so waiting would only add
// wall-clock (and a clock dependency).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per job, including the
	// first try. 0 or 1 disables retries.
	MaxAttempts int
}

// maxAttempts resolves the attempt budget.
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// Degradation mode labels recorded on results that ran degraded.
const (
	// DegradeReducedFuel halves the fuel and solver budgets (attempt 1):
	// most timeout/solver-exhaustion failures are budget blowups, and a
	// cheaper run completes inside the same per-attempt deadline.
	DegradeReducedFuel = "reduced-fuel"
	// DegradeConcreteOnly additionally disables symbolic feedback
	// (attempt 2 and later): the campaign falls back to pure black-box
	// fuzzing, which cannot be hurt by solver pathologies at all.
	DegradeConcreteOnly = "concrete-only"
)

// degrade returns the configuration for the given attempt and the
// degradation mode label ("" for attempt 0, which runs as configured).
// Each step strictly shrinks the work an attempt can do, trading
// completeness for the chance to finish: a degraded verdict over no
// verdict at all.
func degrade(cfg fuzz.Config, attempt int) (fuzz.Config, string) {
	if attempt <= 0 {
		return cfg, ""
	}
	fuel := cfg.Fuel
	if fuel <= 0 {
		fuel = exec.DefaultFuel
	}
	cfg.Fuel = fuel / 2
	conflicts := cfg.SolverConflicts
	if conflicts <= 0 {
		conflicts = 200_000 // the solver's own default budget
	}
	cfg.SolverConflicts = conflicts / 2
	if attempt == 1 {
		return cfg, DegradeReducedFuel
	}
	cfg.DisableFeedback = true
	return cfg, DegradeConcreteOnly
}
