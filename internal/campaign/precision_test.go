package campaign

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// expectedFindings returns the ground-truth verdict vector for one
// injected single-class fixture: the fixture's own class matches its
// Vulnerable flag, everything else is false — with one deliberate
// exception. Single-class Rollback samples keep the paper's Listing 4
// fidelity and derive the lottery outcome from tapos, so both Rollback
// polarities legitimately show BlockinfoDep (the pre-refactor golden in
// backend_diff_test.go pins the same behaviour).
func expectedFindings(spec contractgen.Spec) map[contractgen.Class]bool {
	want := map[contractgen.Class]bool{}
	for _, c := range contractgen.Classes {
		want[c] = c == spec.Class && spec.Vulnerable
	}
	if spec.Class == contractgen.ClassRollback {
		want[contractgen.ClassBlockinfoDep] = true
	}
	return want
}

// TestInjectedFixturePrecisionRecall drives every injected-vulnerability
// fixture — both polarities of all eight classes — through a full
// campaign and scores each oracle class against the generator's ground
// truth. The gate is exact: precision and recall must both be 1.0 for
// every class (no false negative on any injected fixture, no false
// positive on any clean one), which subsumes any fractional floor.
func TestInjectedFixturePrecisionRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixture sweep is slow in -short mode")
	}
	type fixture struct {
		spec contractgen.Spec
		want map[contractgen.Class]bool
	}
	var jobs []Job
	var fixtures []fixture
	for _, class := range contractgen.Classes {
		for _, vul := range []bool{true, false} {
			spec := contractgen.Spec{Class: class, Vulnerable: vul, Seed: 7}
			c, err := contractgen.Generate(spec)
			if err != nil {
				t.Fatalf("generate %v/%v: %v", class, vul, err)
			}
			jobs = append(jobs, Job{
				Name:   fmt.Sprintf("%s-vul=%v", class, vul),
				Module: c.Module,
				ABI:    c.ABI,
				Config: fuzz.Config{Iterations: 160, SolverConflicts: 5000},
			})
			fixtures = append(fixtures, fixture{spec: spec, want: expectedFindings(spec)})
		}
	}
	rep, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// tp/fp/fn per class, over every (fixture, class) verdict.
	tp := map[contractgen.Class]int{}
	fp := map[contractgen.Class]int{}
	fn := map[contractgen.Class]int{}
	for _, jr := range rep.Results {
		if jr.Err != nil {
			t.Fatalf("job %q failed: %v", jr.Job.Name, jr.Err)
		}
		fx := fixtures[jr.Job.ID]
		for _, class := range contractgen.Classes {
			got := jr.Result.Report.Vulnerable[class]
			want := fx.want[class]
			switch {
			case got && want:
				tp[class]++
			case got && !want:
				fp[class]++
				t.Errorf("%s: false positive for %s", jr.Job.Name, class)
			case !got && want:
				fn[class]++
				t.Errorf("%s: false negative for %s", jr.Job.Name, class)
			}
		}
	}
	for _, class := range contractgen.Classes {
		if tp[class] == 0 {
			t.Errorf("%s: no true positive across the fixture sweep (oracle dead?)", class)
		}
		t.Logf("%-14s tp=%d fp=%d fn=%d", class, tp[class], fp[class], fn[class])
	}
}
