package campaign

import (
	"context"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/wasm/exec"
)

func TestDegradeSchedule(t *testing.T) {
	base := fuzz.Config{Iterations: 100, SolverConflicts: 40_000, Fuel: 1_000_000}

	cfg, mode := degrade(base, 0)
	if mode != "" || cfg.Fuel != base.Fuel || cfg.SolverConflicts != base.SolverConflicts || cfg.DisableFeedback {
		t.Fatalf("attempt 0 must run the configured budgets unchanged (mode=%q cfg=%+v)", mode, cfg)
	}

	cfg, mode = degrade(base, 1)
	if mode != DegradeReducedFuel {
		t.Fatalf("attempt 1 mode = %q, want %q", mode, DegradeReducedFuel)
	}
	if cfg.Fuel != base.Fuel/2 || cfg.SolverConflicts != base.SolverConflicts/2 {
		t.Fatalf("attempt 1 budgets not halved: fuel=%d conflicts=%d", cfg.Fuel, cfg.SolverConflicts)
	}
	if cfg.DisableFeedback {
		t.Fatal("attempt 1 must keep symbolic feedback")
	}

	cfg, mode = degrade(base, 2)
	if mode != DegradeConcreteOnly {
		t.Fatalf("attempt 2 mode = %q, want %q", mode, DegradeConcreteOnly)
	}
	if !cfg.DisableFeedback {
		t.Fatal("attempt 2 must disable symbolic feedback")
	}

	// Zero-valued budgets degrade from the defaults, not from zero.
	cfg, _ = degrade(fuzz.Config{Iterations: 10}, 1)
	if cfg.Fuel != exec.DefaultFuel/2 {
		t.Fatalf("unset fuel degrades to %d, want DefaultFuel/2 = %d", cfg.Fuel, exec.DefaultFuel/2)
	}
	if cfg.SolverConflicts <= 0 {
		t.Fatalf("unset solver budget degraded to %d", cfg.SolverConflicts)
	}
}

// TestFaultMatrixRecovery runs the campaign with every job's first attempt
// faulted, once per fault kind. Each kind must escalate to a job failure
// (proving injection reaches the pipeline) and every job must then recover
// on an un-faulted degraded retry: zero terminal failures.
func TestFaultMatrixRecovery(t *testing.T) {
	for _, kind := range faultinject.AllKinds {
		t.Run(kind.String(), func(t *testing.T) {
			jobs := testJobs(t, 10, 30, 9)
			rep, err := Run(context.Background(), jobs, Config{
				Workers:  4,
				BaseSeed: 3,
				Faults:   &faultinject.Plan{Seed: 11, Rate: 1, Kinds: []faultinject.Kind{kind}},
				Retry:    RetryPolicy{MaxAttempts: 3},
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Failed != 0 {
				for _, jr := range rep.Results {
					if jr.Err != nil {
						t.Logf("job %d: class=%s err=%v", jr.Job.ID, jr.FailureClass, jr.Err)
					}
				}
				t.Fatalf("%d terminal failures under %s with retries available", rep.Failed, kind)
			}
			if rep.Retried == 0 {
				t.Fatalf("no job retried: %s faults never escalated to a job failure", kind)
			}
			if rep.Degraded == 0 {
				t.Fatalf("no accepted result was degraded: recoveries must come from degraded retries")
			}
		})
	}
}

// TestFaultEveryAttemptTerminal removes the recovery path: with every
// attempt faulted and retries exhausted, jobs must fail terminally with a
// populated failure class and the attempt counter at the retry cap.
func TestFaultEveryAttemptTerminal(t *testing.T) {
	jobs := testJobs(t, 6, 30, 9)
	rep, err := Run(context.Background(), jobs, Config{
		Workers:  2,
		BaseSeed: 3,
		Faults: &faultinject.Plan{
			Seed: 11, Rate: 1, Attempts: 1 << 20,
			Kinds: []faultinject.Kind{faultinject.KindHostError},
		},
		Retry: RetryPolicy{MaxAttempts: 2},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed == 0 {
		t.Fatal("no terminal failures with every attempt faulted")
	}
	if rep.PerFailure[failure.Trap] != rep.Failed {
		t.Fatalf("PerFailure[trap] = %d, want all %d failures (host-error injects traps)",
			rep.PerFailure[failure.Trap], rep.Failed)
	}
	for _, jr := range rep.Results {
		if jr.Err == nil {
			continue
		}
		if jr.FailureClass != failure.Trap {
			t.Errorf("job %d failed with class %s, want %s", jr.Job.ID, jr.FailureClass, failure.Trap)
		}
		if jr.Attempts != 2 {
			t.Errorf("job %d recorded %d attempts, want the full retry budget of 2", jr.Job.ID, jr.Attempts)
		}
	}
}

// TestChaosNonFaultedVerdictsUnchanged is the acceptance criterion run as a
// unit test: at a 20% fault rate with retries, the campaign completes with
// zero terminal failures, and the jobs the plan left alone report verdicts
// identical to a fault-free baseline.
func TestChaosNonFaultedVerdictsUnchanged(t *testing.T) {
	const nJobs = 20
	mk := func() []Job { return testJobs(t, nJobs, 30, 13) }
	base, err := Run(context.Background(), mk(), Config{Workers: 4, BaseSeed: 7})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	plan := &faultinject.Plan{Seed: 99, Rate: 0.2}
	rep, err := Run(context.Background(), mk(), Config{
		Workers:  4,
		BaseSeed: 7,
		Faults:   plan,
		Retry:    RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d terminal failures at 20%% fault rate with retries", rep.Failed)
	}
	faulted := 0
	for i := 0; i < nJobs; i++ {
		if plan.For(i, 0) != nil {
			faulted++
			continue // a degraded rerun's verdict may legitimately differ
		}
		bjr, fjr := base.Results[i], rep.Results[i]
		if fjr.DegradedMode != "" || fjr.Attempts != 1 {
			t.Errorf("un-faulted job %d retried or degraded (attempts=%d mode=%q)",
				i, fjr.Attempts, fjr.DegradedMode)
		}
		for _, class := range contractgen.Classes {
			if bjr.Result.Report.Vulnerable[class] != fjr.Result.Report.Vulnerable[class] {
				t.Errorf("un-faulted job %d changed its %s verdict under injection", i, class)
			}
		}
	}
	if faulted == 0 {
		t.Fatal("the 20% plan faulted no jobs; the comparison is vacuous")
	}
}
