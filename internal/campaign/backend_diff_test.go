package campaign

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// preBackendGolden is the campaign findings of the full five-class
// fixture sweep captured BEFORE internal/chain grew the Backend
// interface (commit 76604e8, Iterations=160, SolverConflicts=5000,
// Workers=1, BaseSeed=42, Spec.Seed=7). The refactor moved the EOSIO
// host-API surface behind chain.Backend without changing behaviour, so
// the same campaign must reproduce these lines byte-for-byte forever.
// (Rollback fixtures legitimately show BlockinfoDep=true: the
// single-class Rollback reveal template reads tapos.)
const preBackendGolden = `job=0 name="Fake EOS-vul=true" Fake EOS=true Fake Notif=false MissAuth=false BlockinfoDep=false Rollback=false
job=1 name="Fake EOS-vul=false" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=false Rollback=false
job=2 name="Fake Notif-vul=true" Fake EOS=false Fake Notif=true MissAuth=false BlockinfoDep=false Rollback=false
job=3 name="Fake Notif-vul=false" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=false Rollback=false
job=4 name="MissAuth-vul=true" Fake EOS=false Fake Notif=false MissAuth=true BlockinfoDep=false Rollback=false
job=5 name="MissAuth-vul=false" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=false Rollback=false
job=6 name="BlockinfoDep-vul=true" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=true Rollback=false
job=7 name="BlockinfoDep-vul=false" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=false Rollback=false
job=8 name="Rollback-vul=true" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=true Rollback=true
job=9 name="Rollback-vul=false" Fake EOS=false Fake Notif=false MissAuth=false BlockinfoDep=true Rollback=false
`

// originalClasses are the paper's five oracle classes, in Classes order.
var originalClasses = []contractgen.Class{
	contractgen.ClassFakeEOS,
	contractgen.ClassFakeNotif,
	contractgen.ClassMissAuth,
	contractgen.ClassBlockinfoDep,
	contractgen.ClassRollback,
}

// fiveClassDigest rebuilds the pre-refactor FindingsDigest view from a
// report: the same per-job line format, restricted to the original five
// classes (the full digest now also carries the on-chain-data classes,
// which did not exist when the golden was captured).
func fiveClassDigest(t *testing.T, rep *Report) string {
	t.Helper()
	lines := make([]string, 0, len(rep.Results))
	for _, jr := range rep.Results {
		if jr.Err != nil {
			t.Fatalf("job %q failed: %v", jr.Job.Name, jr.Err)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "job=%d name=%q", jr.Job.ID, jr.Job.Name)
		for _, class := range originalClasses {
			fmt.Fprintf(&sb, " %s=%v", class, jr.Result.Report.Vulnerable[class])
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func goldenJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, class := range originalClasses {
		for _, vul := range []bool{true, false} {
			c, err := contractgen.Generate(contractgen.Spec{Class: class, Vulnerable: vul, Seed: 7})
			if err != nil {
				t.Fatalf("generate %v/%v: %v", class, vul, err)
			}
			jobs = append(jobs, Job{
				Name:   fmt.Sprintf("%s-vul=%v", class, vul),
				Module: c.Module,
				ABI:    c.ABI,
				Config: fuzz.Config{Iterations: 160, SolverConflicts: 5000},
			})
		}
	}
	return jobs
}

// TestBackendRefactorGoldenDigest is the tentpole's acceptance gate: with
// the EOSIO personality behind chain.Backend, the five-class fixture
// campaign reproduces the findings captured before the refactor,
// byte-identically, at every worker count.
func TestBackendRefactorGoldenDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("full fixture sweep is slow in -short mode")
	}
	for _, workers := range []int{1, 4, 8} {
		rep, err := Run(context.Background(), goldenJobs(t), Config{Workers: workers, BaseSeed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := fiveClassDigest(t, rep); got != preBackendGolden {
			t.Errorf("workers=%d: five-class findings diverged from the pre-refactor golden\n--- got ---\n%s--- want ---\n%s",
				workers, got, preBackendGolden)
		}
	}
}
