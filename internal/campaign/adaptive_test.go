package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/memo"
	"repro/internal/wal"
)

// keepJournalPrefix rewrites a journal keeping only its first keep records
// (header meta preserved) — the durable state of a clean mid-campaign kill.
func keepJournalPrefix(t *testing.T, path string, keep int) {
	t.Helper()
	log, replay, err := wal.Open(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	log.Close()
	if keep > len(replay.Records) {
		keep = len(replay.Records)
	}
	out, err := wal.Create(path, wal.Options{Meta: replay.Meta, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	for _, rec := range replay.Records[:keep] {
		if err := out.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdaptiveDigestWorkerInvariant: the adaptive campaign's digests are
// identical at every worker count, both alone and composed with the full
// optimization stack (shared memo, static triage, verdict triage, the
// incremental solver and the decoded-IR VM) — every scheduling decision is
// a pure function of (seed, observed coverage), so worker interleaving and
// cache hits must be invisible.
func TestAdaptiveDigestWorkerInvariant(t *testing.T) {
	const nJobs = 10
	mk := func() []Job { return testJobs(t, nJobs, 40, 31) }
	layers := []struct {
		name string
		cfg  Config
	}{
		{"bare", Config{Adaptive: true, BaseSeed: 3}},
		{"full-stack", Config{
			Adaptive:     true,
			BaseSeed:     3,
			Memo:         memo.ModeShared,
			StaticTriage: true,
			Verdicts:     true,
			Incremental:  true,
			FastVM:       true,
		}},
	}
	for _, layer := range layers {
		t.Run(layer.name, func(t *testing.T) {
			var refState, refFindings string
			for i, workers := range []int{1, 4, 8} {
				cfg := layer.cfg
				cfg.Workers = workers
				rep, err := Run(context.Background(), mk(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rep.Sched.Zero() {
					t.Fatalf("workers=%d: no scheduler activity recorded", workers)
				}
				if i == 0 {
					refState, refFindings = rep.StateDigest(), rep.FindingsDigest()
					continue
				}
				if got := rep.StateDigest(); got != refState {
					t.Errorf("workers=%d: StateDigest diverged:\n got: %s\nwant: %s", workers, got, refState)
				}
				if got := rep.FindingsDigest(); got != refFindings {
					t.Errorf("workers=%d: FindingsDigest diverged:\n got: %s\nwant: %s", workers, got, refFindings)
				}
			}
		})
	}
}

// TestAdaptiveStaticDigestUnchanged: running the same jobs with Adaptive
// off through the adaptive-capable engine yields a digest with no sched
// groups at all — the off path is byte-identical to the historical one and
// the scheduling layer's presence is invisible.
func TestAdaptiveStaticDigestUnchanged(t *testing.T) {
	jobs := testJobs(t, 6, 30, 41)
	rep, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Sched.Zero() {
		t.Errorf("static campaign reported scheduler counters: %+v", rep.Sched)
	}
	for _, jr := range rep.Results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", jr.Job.ID, jr.Err)
		}
		if !jr.Result.Sched.Zero() || jr.Result.Saturated {
			t.Errorf("job %d carries adaptive state: sched=%+v saturated=%v",
				jr.Job.ID, jr.Result.Sched, jr.Result.Saturated)
		}
	}
}

// TestAdaptiveKillResumeDigestIdentity: an adaptive campaign killed at the
// journal level and resumed must converge on the uninterrupted digests —
// the fuel ledger recomputes identical grants from the journaled phase-1
// summaries plus the live re-runs.
func TestAdaptiveKillResumeDigestIdentity(t *testing.T) {
	const nJobs = 10
	mk := func() []Job { return testJobs(t, nJobs, 40, 51) }
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Config{Workers: workers, BaseSeed: 7, Adaptive: true}
			ref, err := Run(context.Background(), mk(), cfg)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// The interrupted run: journal everything, then cut the journal
			// back to a prefix — the durable state a SIGKILL after N synced
			// records leaves behind.
			journal := filepath.Join(t.TempDir(), "adaptive.jsonl")
			jcfg := cfg
			jcfg.Journal = journal
			jcfg.JournalSync = 1
			if _, err := Run(context.Background(), mk(), jcfg); err != nil {
				t.Fatalf("journaled run: %v", err)
			}
			keepJournalPrefix(t, journal, nJobs/2)

			rcfg := jcfg
			rcfg.Resume = true
			rep, err := Run(context.Background(), mk(), rcfg)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if rep.Replayed == 0 || rep.Replayed >= nJobs {
				t.Fatalf("resumed run replayed %d of %d jobs; the cut did not interrupt anything", rep.Replayed, nJobs)
			}
			if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("FindingsDigest diverged after kill+resume:\n got: %s\nwant: %s", got, want)
			}
			if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
				t.Errorf("StateDigest diverged after kill+resume:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
