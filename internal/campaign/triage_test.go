package campaign

import (
	"context"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/scanner"
	"repro/internal/static"
)

// triageTestJobs is testJobs plus trivial (provably-negative) contracts
// interleaved, so the triage path has something to skip.
func triageTestJobs(tb testing.TB, n, iterations int, seed int64) []Job {
	tb.Helper()
	jobs := testJobs(tb, n, iterations, seed)
	for i := 0; i < 4; i++ {
		c := contractgen.Trivial()
		jobs = append(jobs, Job{
			Name:   "trivial",
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{Iterations: iterations, SolverConflicts: 50_000},
		})
	}
	return jobs
}

// TestTriageFindingsIdentical is the acceptance gate of the static layer:
// the same batch, triage off vs. on, must report byte-identical findings.
// Triage may only skip provably-negative jobs, so every verdict — including
// those of the skipped jobs — matches the dynamic run's.
func TestTriageFindingsIdentical(t *testing.T) {
	jobs := triageTestJobs(t, 10, 25, 17)
	base, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	triaged, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 7, StaticTriage: true})
	if err != nil {
		t.Fatal(err)
	}
	if triaged.Skipped == 0 {
		t.Error("triage skipped nothing; the trivial contracts should be provably negative")
	}
	if base.Skipped != 0 {
		t.Errorf("baseline skipped %d jobs with triage disabled", base.Skipped)
	}
	if b, tr := base.FindingsDigest(), triaged.FindingsDigest(); b != tr {
		t.Errorf("triage changed findings:\n--- baseline ---\n%s\n--- triage ---\n%s", b, tr)
	}
	// Triage runs must also be self-deterministic (the reorder is by static
	// score, which is a pure function of the modules).
	again, err := Run(context.Background(), jobs, Config{Workers: 2, BaseSeed: 7, StaticTriage: true})
	if err != nil {
		t.Fatal(err)
	}
	if triaged.StateDigest() != again.StateDigest() {
		t.Error("triage run not deterministic across worker counts")
	}
}

// TestTriageNeverSkipsCandidates pins the skip condition: generated
// benchmark contracts all dispatch through call_indirect, so they are Fake
// EOS/Notif candidates and must run dynamically even under triage.
func TestTriageNeverSkipsCandidates(t *testing.T) {
	jobs := testJobs(t, 5, 20, 23)
	rep, err := Run(context.Background(), jobs, Config{Workers: 2, BaseSeed: 3, StaticTriage: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 0 {
		t.Errorf("triage skipped %d candidate-bearing contracts", rep.Skipped)
	}
}

// TestTriageRespectsCustomDetectors pins the other skip guard: a job with a
// custom detector observes behaviour the candidate flags say nothing about,
// so even a provably-oracle-negative contract must run.
func TestTriageRespectsCustomDetectors(t *testing.T) {
	c := contractgen.Trivial()
	rep, err := static.Analyze(c.Module)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Module: c.Module, ABI: c.ABI}
	if !skippable(job, rep) {
		t.Fatal("trivial job without detectors should be skippable")
	}
	job.Config.CustomDetectors = []scanner.CustomDetector{
		scanner.NewAPICallDetector("probe", c.Module, "current_time"),
	}
	if skippable(job, rep) {
		t.Error("job with a custom detector must not be skippable")
	}
	job.Config.CustomDetectors = nil
	job.Config.KeepTraces = true
	if skippable(job, rep) {
		t.Error("job keeping traces must not be skippable")
	}
}
