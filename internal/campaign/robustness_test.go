package campaign

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/scanner"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// patchApply swaps the generated contract's apply body for the given
// instruction stream (used to build adversarial interpreter inputs the
// generator would never emit).
func patchApply(tb testing.TB, c *contractgen.Contract, body []wasm.Instr) {
	tb.Helper()
	idx, ok := c.Module.ExportedFunc("apply")
	if !ok {
		tb.Fatal("contract has no apply export")
	}
	code := c.Module.CodeFor(idx)
	if code == nil {
		tb.Fatal("apply has no body")
	}
	code.Locals = nil
	code.Body = body
}

// makeContract generates one deterministic contract of the given class.
func makeContract(tb testing.TB, class contractgen.Class, seed int64) *contractgen.Contract {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, err := contractgen.Generate(contractgen.RandomSpec(class, true, rng))
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return c
}

// importIndex finds the function-index of a named host import.
func importIndex(tb testing.TB, m *wasm.Module, name string) uint32 {
	tb.Helper()
	idx := uint32(0)
	for _, imp := range m.Imports {
		if imp.Kind != wasm.ExternalFunc {
			continue
		}
		if imp.Name == name {
			return idx
		}
		idx++
	}
	tb.Fatalf("contract does not import %s", name)
	return 0
}

// TestInfiniteLoopJobTimesOut plants a contract whose apply spins forever.
// The per-job deadline must fail that job with context.DeadlineExceeded —
// promptly, because every transaction is fuel-bounded and the fuzzer checks
// the context between iterations — while the rest of the batch completes.
func TestInfiniteLoopJobTimesOut(t *testing.T) {
	spinner := makeContract(t, contractgen.ClassMissAuth, 1)
	patchApply(t, spinner, []wasm.Instr{wasm.Loop(), wasm.Br(0), wasm.End(), wasm.End()})

	jobs := testJobs(t, 4, 30, 17)
	spinJob := Job{
		Name:   "spinner",
		Module: spinner.Module,
		ABI:    spinner.ABI,
		// Tight fuel keeps each (always-trapping) transaction cheap so the
		// deadline is noticed within a few iterations; the huge budget would
		// otherwise run for minutes.
		Config: fuzz.Config{Iterations: 1 << 20, SolverConflicts: 50_000, Fuel: 200_000},
	}
	jobs = append(jobs, spinJob)

	start := time.Now()
	rep, err := Run(context.Background(), jobs, Config{
		Workers:    2,
		BaseSeed:   1,
		JobTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	spin := rep.Results[len(jobs)-1]
	if !errors.Is(spin.Err, context.DeadlineExceeded) {
		t.Fatalf("spinner job: want DeadlineExceeded, got %v", spin.Err)
	}
	for _, jr := range rep.Results[:len(jobs)-1] {
		if jr.Err != nil {
			t.Errorf("job %d (%s) failed alongside the spinner: %v", jr.Job.ID, jr.Job.Name, jr.Err)
		}
	}
	if rep.Completed != len(jobs)-1 || rep.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want %d/1", rep.Completed, rep.Failed, len(jobs)-1)
	}
	// "Within the per-job deadline": generous slack for loaded CI machines,
	// but far below what 2^20 iterations would take.
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("batch took %v; the deadline did not interrupt the spinner", wall)
	}
}

// TestHostTrapJobCompletes plants a contract whose apply calls
// read_action_data with a wild out-of-bounds pointer. Host APIs surface
// out-of-bounds access as a trap that reverts the transaction (never a
// panic), so the job completes its full budget and the batch is unharmed.
func TestHostTrapJobCompletes(t *testing.T) {
	trapper := makeContract(t, contractgen.ClassMissAuth, 2)
	read := importIndex(t, trapper.Module, "read_action_data")
	patchApply(t, trapper, []wasm.Instr{
		wasm.I32Const(0x7ff0_0000), // far past linear memory
		wasm.I32Const(64),
		wasm.Call(read),
		wasm.Drop(),
		wasm.End(),
	})

	jobs := testJobs(t, 3, 30, 23)
	jobs = append(jobs, Job{
		Name:   "trapper",
		Module: trapper.Module,
		ABI:    trapper.ABI,
		Config: fuzz.Config{Iterations: 30, SolverConflicts: 50_000},
	})
	rep, err := Run(context.Background(), jobs, Config{
		Workers:    2,
		BaseSeed:   1,
		JobTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed != 0 {
		for _, jr := range rep.Results {
			if jr.Err != nil {
				t.Errorf("job %d (%s): %v", jr.Job.ID, jr.Job.Name, jr.Err)
			}
		}
		t.Fatal("per-transaction traps must not fail the job")
	}
	tj := rep.Results[len(jobs)-1]
	if tj.Result.Iterations != 30 {
		t.Fatalf("trapper ran %d iterations, want the full 30", tj.Result.Iterations)
	}
}

// bombDetector is a custom oracle that panics the first time it observes a
// trace — the worst-case §5 extension code.
type bombDetector struct{}

func (bombDetector) Name() string                          { return "bomb" }
func (bombDetector) Observe(*trace.Trace, scanner.APISets) { panic("detector bomb") }
func (bombDetector) Vulnerable() bool                      { return false }

// TestPanickingDetectorIsIsolated registers a panicking custom detector on
// one job: that job must fail with a *PanicError carrying the stack, and
// every other job must complete.
func TestPanickingDetectorIsIsolated(t *testing.T) {
	jobs := testJobs(t, 5, 30, 31)
	jobs[2].Config.CustomDetectors = []scanner.CustomDetector{bombDetector{}}

	rep, err := Run(context.Background(), jobs, Config{Workers: 3, BaseSeed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var pe *PanicError
	if !errors.As(rep.Results[2].Err, &pe) {
		t.Fatalf("job 2: want *PanicError, got %v", rep.Results[2].Err)
	}
	if pe.Value != "detector bomb" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	for i, jr := range rep.Results {
		if i == 2 {
			continue
		}
		if jr.Err != nil {
			t.Errorf("job %d failed alongside the bomb: %v", i, jr.Err)
		}
	}
	if rep.Completed != 4 || rep.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 4/1", rep.Completed, rep.Failed)
	}
}
