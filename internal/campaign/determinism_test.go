package campaign

import (
	"context"
	"testing"
)

// TestDeterminismAcrossWorkerCounts is the engine's core guarantee: the
// same 50-contract batch produces byte-identical findings with 1, 4, and 8
// workers. Seeds derive from job IDs (BaseSeed + ID), never from worker
// identity or scheduling, so sharding is invisible in the results.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("50-contract batch is slow in -short mode")
	}
	jobs := testJobs(t, 50, 30, 42)
	digests := map[int]string{}
	for _, workers := range []int{1, 4, 8} {
		rep, err := Run(context.Background(), jobs, Config{Workers: workers, BaseSeed: 7})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Failed != 0 {
			t.Fatalf("workers=%d: %d jobs failed", workers, rep.Failed)
		}
		digests[workers] = rep.StateDigest()
	}
	if digests[1] != digests[4] {
		t.Errorf("findings differ between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			digests[1], digests[4])
	}
	if digests[1] != digests[8] {
		t.Errorf("findings differ between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			digests[1], digests[8])
	}
}

// TestDeterminismRepeatedRun guards against hidden global state: two
// identical runs at the same worker count must also agree.
func TestDeterminismRepeatedRun(t *testing.T) {
	jobs := testJobs(t, 12, 25, 99)
	var first string
	for run := 0; run < 2; run++ {
		rep, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 3})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		d := rep.StateDigest()
		if run == 0 {
			first = d
		} else if d != first {
			t.Errorf("repeated run diverged:\n--- first ---\n%s\n--- second ---\n%s", first, d)
		}
	}
}

// TestExplicitSeedWins checks that a job carrying its own fuzz seed is not
// re-seeded by the engine, so callers can reproduce one contract's campaign
// in isolation.
func TestExplicitSeedWins(t *testing.T) {
	jobs := testJobs(t, 4, 25, 5)
	for i := range jobs {
		jobs[i].Config.Seed = 1000 + int64(i)
	}
	rep1, err := Run(context.Background(), jobs, Config{Workers: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Different BaseSeed must not matter when every job pins its own seed.
	rep2, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 888})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.StateDigest() != rep2.StateDigest() {
		t.Error("explicit per-job seeds did not override the base seed")
	}
}
