package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/fuzz"
	"repro/internal/scanner"
	"repro/internal/symbolic"
)

// journal.go implements the checkpoint/resume layer: an append-only JSONL
// journal that records one self-checksummed record per completed job. A
// crashed or killed campaign is resumed by re-running with Config.Resume:
// journaled jobs are answered by replay (no fuzzing), the rest run
// normally, and the final report is byte-identical to an uninterrupted
// run's — replay preserves verdicts, counters, degradation modes and even
// failure strings exactly.
//
// The journal deliberately stores outcomes, not progress: jobs are the
// unit of checkpointing because they are the unit of determinism (seeds
// derive from job IDs). Mid-job state (RNG position, seed pools, coverage
// maps) never touches disk. Trace payloads (fuzz.Config.KeepTraces) and
// the coverage time series are also not journaled — replayed results
// carry verdicts and scalar counters only.

// journalKind discriminates journal records.
const (
	journalKindHeader = "header"
	journalKindJob    = "job"
)

// journalRecord is one JSONL line. The Sum field carries an IEEE CRC32 of
// the record serialized with Sum=0 (Go's json marshaling is deterministic
// for a fixed struct, so the checksum round-trips): torn or corrupted
// tail lines from a killed process are detected and dropped rather than
// trusted or fatal.
type journalRecord struct {
	Kind string `json:"kind"`

	// Header fields. BaseSeed guards against resuming a journal under a
	// different seed derivation, which would silently mix results from
	// two different campaigns.
	BaseSeed int64 `json:"base_seed,omitempty"`

	// Job fields.
	ID           int                   `json:"id,omitempty"`
	Name         string                `json:"name,omitempty"`
	Err          string                `json:"err,omitempty"`
	Failure      string                `json:"failure,omitempty"`
	Skipped      bool                  `json:"skipped,omitempty"`
	Attempts     int                   `json:"attempts,omitempty"`
	DegradedMode string                `json:"degraded,omitempty"`
	Flagged      []int                 `json:"flagged,omitempty"`
	Custom       map[string]bool       `json:"custom,omitempty"`
	Coverage     int                   `json:"coverage,omitempty"`
	Adaptive     int                   `json:"adaptive,omitempty"`
	Iterations   int                   `json:"iterations,omitempty"`
	ReplayErrors int                   `json:"replay_errors,omitempty"`
	Solver       *symbolic.SolverStats `json:"solver,omitempty"`

	Sum uint32 `json:"sum"`
}

// checksum computes the record's CRC over its Sum=0 serialization.
func (rec *journalRecord) checksum() uint32 {
	saved := rec.Sum
	rec.Sum = 0
	b, err := json.Marshal(rec)
	rec.Sum = saved
	if err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(b)
}

// recordOf flattens a completed JobResult into its journal line.
func recordOf(jr JobResult) journalRecord {
	rec := journalRecord{
		Kind:         journalKindJob,
		ID:           jr.Job.ID,
		Name:         jr.Job.Name,
		Skipped:      jr.Skipped,
		Attempts:     jr.Attempts,
		DegradedMode: jr.DegradedMode,
	}
	if jr.Err != nil {
		rec.Err = jr.Err.Error()
		rec.Failure = jr.FailureClass.String()
		return rec
	}
	res := jr.Result
	for _, class := range contractgen.Classes {
		if res.Report.Vulnerable[class] {
			rec.Flagged = append(rec.Flagged, int(class))
		}
	}
	rec.Custom = res.Custom
	rec.Coverage = res.Coverage
	rec.Adaptive = res.AdaptiveSeeds
	rec.Iterations = res.Iterations
	rec.ReplayErrors = res.ReplayErrors
	if res.SolverStats != (symbolic.SolverStats{}) {
		stats := res.SolverStats
		rec.Solver = &stats
	}
	return rec
}

// replayedError restores a journaled failure. It reproduces the original
// message byte-for-byte (digest identity) while the failure class rides
// alongside in the record, so classification survives the round trip even
// though the original error chain cannot.
type replayedError struct{ msg string }

func (e *replayedError) Error() string { return e.msg }

// toResult reconstitutes the JobResult for a journaled job. The caller
// supplies the Job (modules are not journaled — the resumed run re-submits
// the same population).
func (rec *journalRecord) toResult(job Job) JobResult {
	jr := JobResult{
		Job:          job,
		Skipped:      rec.Skipped,
		Attempts:     rec.Attempts,
		DegradedMode: rec.DegradedMode,
		Replayed:     true,
	}
	if rec.Err != "" {
		jr.Err = &replayedError{msg: rec.Err}
		jr.FailureClass = failure.ParseClass(rec.Failure)
		return jr
	}
	report := scanner.NewReport()
	for _, c := range rec.Flagged {
		report.Vulnerable[contractgen.Class(c)] = true
	}
	custom := rec.Custom
	if custom == nil {
		custom = map[string]bool{}
	}
	jr.Result = &fuzz.Result{
		Report:        report,
		Coverage:      rec.Coverage,
		AdaptiveSeeds: rec.Adaptive,
		Iterations:    rec.Iterations,
		ReplayErrors:  rec.ReplayErrors,
		Custom:        custom,
	}
	if rec.Solver != nil {
		jr.Result.SolverStats = *rec.Solver
	}
	return jr
}

// journalWriter appends records to the journal file, serialized across
// workers. Every record is written line-atomically so a killed process
// loses at most the line being written — which the CRC then rejects. The
// first write failure sticks (Err): later appends are dropped rather than
// interleaving partial lines into a sick file.
type journalWriter struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

func (w *journalWriter) append(rec journalRecord) error {
	rec.Sum = rec.checksum()
	b, err := json.Marshal(rec)
	if err != nil {
		err = fmt.Errorf("campaign: journal: %w", err)
		w.fail(err)
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		w.err = fmt.Errorf("campaign: journal: %w", err)
		return w.err
	}
	return nil
}

func (w *journalWriter) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the sticky first write failure, if any.
func (w *journalWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *journalWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// loadJournal reads an existing journal, dropping unparseable or
// checksum-failing lines (a torn tail from a killed run is expected, not
// fatal). It returns the journaled job records keyed by ID and the header
// (nil when the file never got one).
func loadJournal(path string) (map[int]*journalRecord, *journalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	done := map[int]*journalRecord{}
	var header *journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec := &journalRecord{}
		if err := json.Unmarshal(line, rec); err != nil {
			continue // torn or corrupt line
		}
		if rec.Sum != rec.checksum() {
			continue // bit rot or partial write
		}
		switch rec.Kind {
		case journalKindHeader:
			if header == nil {
				header = rec
			}
		case journalKindJob:
			done[rec.ID] = rec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	return done, header, nil
}

// openJournal prepares the engine's journal state from the config: the
// set of already-completed jobs (resume) and the open append handle.
func openJournal(cfg Config) (map[int]*journalRecord, *journalWriter, error) {
	if cfg.Journal == "" {
		if cfg.Resume {
			// Configuration misuse surfaced to the caller before any job
			// runs — never classified, never retried.
			return nil, nil, fmt.Errorf("campaign: Resume requires a Journal path") //wasai:rawerr config validation

		}
		return nil, nil, nil
	}
	var done map[int]*journalRecord
	if cfg.Resume {
		var header *journalRecord
		var err error
		done, header, err = loadJournal(cfg.Journal)
		if err != nil {
			if os.IsNotExist(err) {
				// Nothing to resume: behave like a fresh journaled run.
				done = nil
			} else {
				return nil, nil, err
			}
		}
		if header != nil && header.BaseSeed != cfg.BaseSeed {
			//wasai:rawerr config validation, surfaced before any job runs
			return nil, nil, fmt.Errorf("campaign: journal %s was written with base seed %d, refusing to resume with %d",
				cfg.Journal, header.BaseSeed, cfg.BaseSeed)
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if cfg.Resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(cfg.Journal, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	w := &journalWriter{f: f}
	if len(done) == 0 {
		// Fresh (or effectively fresh) journal: stamp the header.
		if err := w.append(journalRecord{Kind: journalKindHeader, BaseSeed: cfg.BaseSeed}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return done, w, nil
}
