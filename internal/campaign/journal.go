package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/fuzz"
	"repro/internal/scanner"
	"repro/internal/schedule"
	"repro/internal/symbolic"
	"repro/internal/wal"
)

// journal.go implements the checkpoint/resume layer: an append-only
// journal that records one record per completed job, on top of the
// crash-safe WAL (internal/wal — CRC-framed records, explicit fsync
// policy, torn-tail truncation). A crashed or killed campaign is resumed
// by re-running with Config.Resume: journaled jobs are answered by replay
// (no fuzzing), the rest run normally, and the final report is
// byte-identical to an uninterrupted run's — replay preserves verdicts,
// counters, degradation modes and even failure strings exactly.
//
// The journal deliberately stores outcomes, not progress: jobs are the
// unit of checkpointing because they are the unit of determinism (seeds
// derive from job IDs). Mid-job state (RNG position, seed pools, coverage
// maps) never touches disk. Trace payloads (fuzz.Config.KeepTraces) and
// the coverage time series are also not journaled — replayed results
// carry verdicts and scalar counters only.
//
// Durability: the WAL fsyncs its header before the first job record and
// then every Config.JournalSync records (default wal.DefaultSyncEvery), so
// a SIGKILL loses at most the last unsynced handful of outcomes — which a
// resume simply re-runs — and never a torn line (the WAL truncates those
// on open).

// journalMeta is the WAL header blob: it pins the seed derivation so a
// journal cannot be resumed under a different campaign.
type journalMeta struct {
	BaseSeed int64 `json:"base_seed"`
}

// journalRecord is one journaled job outcome (the payload of one WAL
// record; framing and checksumming live in internal/wal).
type journalRecord struct {
	ID           int                   `json:"id"`
	Name         string                `json:"name,omitempty"`
	Err          string                `json:"err,omitempty"`
	Failure      string                `json:"failure,omitempty"`
	Skipped      bool                  `json:"skipped,omitempty"`
	Attempts     int                   `json:"attempts,omitempty"`
	DegradedMode string                `json:"degraded,omitempty"`
	Flagged      []int                 `json:"flagged,omitempty"`
	Custom       map[string]bool       `json:"custom,omitempty"`
	Coverage     int                   `json:"coverage,omitempty"`
	Adaptive     int                   `json:"adaptive,omitempty"`
	Iterations   int                   `json:"iterations,omitempty"`
	ReplayErrors int                   `json:"replay_errors,omitempty"`
	Solver       *symbolic.SolverStats `json:"solver,omitempty"`
	Sched        *schedRecord          `json:"sched,omitempty"`
}

// schedRecord checkpoints a job's adaptive-scheduling state: the final
// counters (replayed into the state digest) and the phase-1 summary the
// fuel ledger ranked the job by. The summary is what makes kill+resume
// reproduce the same adaptive digest — a resumed campaign feeds replayed
// summaries and live ones into the same pure Reallocate, so the remaining
// jobs receive exactly the grants of the uninterrupted run.
type schedRecord struct {
	// Final result state.
	Saturated bool `json:"saturated,omitempty"`
	Energy    int  `json:"energy,omitempty"`
	Composite int  `json:"composite,omitempty"`
	Skips     int  `json:"skips,omitempty"`
	// Phase-1 summary (ledger recomputation on resume). Executed marks a
	// job whose phase 1 completed — failed-later jobs still contribute.
	Executed    bool `json:"p1_ok,omitempty"`
	P1Saturated bool `json:"p1_saturated,omitempty"`
	Unspent     int  `json:"unspent,omitempty"`
	Score       int  `json:"score,omitempty"`
	P1Coverage  int  `json:"p1_coverage,omitempty"`
	P1Iters     int  `json:"p1_iters,omitempty"`
	Grant       int  `json:"grant,omitempty"`
}

// recordOf flattens a completed JobResult into its journal record.
func recordOf(jr JobResult) journalRecord {
	rec := journalRecord{
		ID:           jr.Job.ID,
		Name:         jr.Job.Name,
		Skipped:      jr.Skipped,
		Attempts:     jr.Attempts,
		DegradedMode: jr.DegradedMode,
	}
	if jr.Err != nil {
		rec.Err = jr.Err.Error()
		rec.Failure = jr.FailureClass.String()
		return rec
	}
	res := jr.Result
	for _, class := range contractgen.Classes {
		if res.Report.Vulnerable[class] {
			rec.Flagged = append(rec.Flagged, int(class))
		}
	}
	rec.Custom = res.Custom
	rec.Coverage = res.Coverage
	rec.Adaptive = res.AdaptiveSeeds
	rec.Iterations = res.Iterations
	rec.ReplayErrors = res.ReplayErrors
	if res.SolverStats != (symbolic.SolverStats{}) {
		stats := res.SolverStats
		rec.Solver = &stats
	}
	if !res.Sched.Zero() || res.Saturated {
		rec.Sched = &schedRecord{
			Saturated: res.Saturated,
			Energy:    res.Sched.EnergyUpdates,
			Composite: res.Sched.CompositeFired,
			Skips:     res.Sched.SaturationSkips,
		}
	}
	return rec
}

// replayedError restores a journaled failure. It reproduces the original
// message byte-for-byte (digest identity) while the failure class rides
// alongside in the record, so classification survives the round trip even
// though the original error chain cannot.
type replayedError struct{ msg string }

func (e *replayedError) Error() string { return e.msg }

// toResult reconstitutes the JobResult for a journaled job. The caller
// supplies the Job (modules are not journaled — the resumed run re-submits
// the same population).
func (rec *journalRecord) toResult(job Job) JobResult {
	jr := JobResult{
		Job:          job,
		Skipped:      rec.Skipped,
		Attempts:     rec.Attempts,
		DegradedMode: rec.DegradedMode,
		Replayed:     true,
	}
	if rec.Err != "" {
		jr.Err = &replayedError{msg: rec.Err}
		jr.FailureClass = failure.ParseClass(rec.Failure)
		return jr
	}
	report := scanner.NewReport()
	for _, c := range rec.Flagged {
		report.Vulnerable[contractgen.Class(c)] = true
	}
	custom := rec.Custom
	if custom == nil {
		custom = map[string]bool{}
	}
	jr.Result = &fuzz.Result{
		Report:        report,
		Coverage:      rec.Coverage,
		AdaptiveSeeds: rec.Adaptive,
		Iterations:    rec.Iterations,
		ReplayErrors:  rec.ReplayErrors,
		Custom:        custom,
	}
	if rec.Solver != nil {
		jr.Result.SolverStats = *rec.Solver
	}
	if rec.Sched != nil {
		jr.Result.Saturated = rec.Sched.Saturated
		jr.Result.Sched = schedule.Counters{
			EnergyUpdates:   rec.Sched.Energy,
			CompositeFired:  rec.Sched.Composite,
			SaturationSkips: rec.Sched.Skips,
		}
	}
	return jr
}

// journalWriter appends job records to the WAL, serialized across workers.
// Marshal failures stick just like the WAL's own write failures: later
// appends are dropped rather than mixing a partial stream into a journal
// that would resume wrong.
type journalWriter struct {
	log *wal.Log

	mu  sync.Mutex
	err error
}

func (w *journalWriter) append(rec journalRecord) error {
	if err := w.Err(); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		err = fmt.Errorf("campaign: journal: %w", err)
		w.fail(err)
		return err
	}
	if err := w.log.Append(b); err != nil {
		err = fmt.Errorf("campaign: journal: %w", err)
		w.fail(err)
		return err
	}
	return nil
}

func (w *journalWriter) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the sticky first write failure, if any.
func (w *journalWriter) Err() error {
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if err := w.log.Err(); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	return nil
}

func (w *journalWriter) Close() error { return w.log.Close() }

// decodeJournal converts replayed WAL payloads into the journaled job map.
// Records that fail to unmarshal are dropped (the WAL already CRC-checked
// them, so this only guards against foreign payloads).
func decodeJournal(replay *wal.Replay) map[int]*journalRecord {
	done := map[int]*journalRecord{}
	for _, payload := range replay.Records {
		rec := &journalRecord{}
		if err := json.Unmarshal(payload, rec); err != nil {
			continue
		}
		done[rec.ID] = rec
	}
	return done
}

// openJournal prepares the engine's journal state from the config: the
// set of already-completed jobs (resume) and the open append handle.
func openJournal(cfg Config) (map[int]*journalRecord, *journalWriter, error) {
	if cfg.Journal == "" {
		if cfg.Resume {
			// Configuration misuse surfaced to the caller before any job
			// runs — never classified, never retried.
			return nil, nil, fmt.Errorf("campaign: Resume requires a Journal path") //wasai:rawerr config validation

		}
		return nil, nil, nil
	}
	meta, err := json.Marshal(journalMeta{BaseSeed: cfg.BaseSeed})
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	opts := wal.Options{SyncEvery: cfg.JournalSync, Meta: meta}
	if !cfg.Resume {
		log, err := wal.Create(cfg.Journal, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: journal: %w", err)
		}
		return nil, &journalWriter{log: log}, nil
	}
	log, replay, err := wal.Open(cfg.Journal, opts)
	if err != nil {
		if os.IsNotExist(err) {
			// Nothing to resume: behave like a fresh journaled run.
			log, err := wal.Create(cfg.Journal, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("campaign: journal: %w", err)
			}
			return nil, &journalWriter{log: log}, nil
		}
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if replay.Meta != nil {
		var m journalMeta
		if err := json.Unmarshal(replay.Meta, &m); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("campaign: journal %s: header: %w", cfg.Journal, err)
		}
		if m.BaseSeed != cfg.BaseSeed {
			log.Close()
			//wasai:rawerr config validation, surfaced before any job runs
			return nil, nil, fmt.Errorf("campaign: journal %s was written with base seed %d, refusing to resume with %d",
				cfg.Journal, m.BaseSeed, cfg.BaseSeed)
		}
	}
	return decodeJournal(replay), &journalWriter{log: log}, nil
}
