package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStressManyProducersManyWorkers hammers the engine under the race
// detector: several producer goroutines submit through one bounded queue
// while a full worker pool drains it. Run with -race (the repo's verify
// target does); the assertions only check conservation — every job in,
// exactly one result out.
func TestStressManyProducersManyWorkers(t *testing.T) {
	const (
		producers   = 4
		jobsPerProd = 24
	)
	total := producers * jobsPerProd
	jobs := testJobs(t, total, 8, 123)

	e, err := Start(context.Background(), Config{Workers: 16, QueueDepth: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < jobsPerProd; i++ {
				id := p*jobsPerProd + i
				jobs[id].ID = id
				if err := e.Submit(jobs[id]); err != nil {
					t.Errorf("producer %d: submit %d: %v", p, id, err)
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		e.Close()
	}()

	got := make([]bool, total)
	n := 0
	for jr := range e.Results() {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", jr.Job.ID, jr.Err)
		}
		if got[jr.Job.ID] {
			t.Fatalf("job %d delivered twice", jr.Job.ID)
		}
		got[jr.Job.ID] = true
		n++
	}
	if n != total {
		t.Fatalf("got %d results, want %d", n, total)
	}
}

// TestStressCancelMidBatch cancels the campaign context while workers are
// busy: the engine must unblock producers, fail the remaining jobs with the
// context error, and still close the results channel.
func TestStressCancelMidBatch(t *testing.T) {
	jobs := testJobs(t, 40, 200, 321)
	ctx, cancel := context.WithCancel(context.Background())
	e, err := Start(ctx, Config{Workers: 4, QueueDepth: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				break // expected once cancelled
			}
		}
		e.Close()
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for jr := range e.Results() {
			if jr.Err != nil && !errors.Is(jr.Err, context.Canceled) {
				t.Errorf("job %d: unexpected error %v", jr.Job.ID, jr.Err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("results channel did not close after cancellation")
	}
}

// TestStressEach runs the generic parallel for-each at high fan-out under
// the race detector, with every item touching shared state through the
// documented pattern (indexed slice slots).
func TestStressEach(t *testing.T) {
	const n = 500
	out := make([]int, n)
	err := Each(context.Background(), n, Config{Workers: 32}, func(_ context.Context, i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d: got %d", i, v)
		}
	}
}
