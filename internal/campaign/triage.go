package campaign

import (
	"sync"

	"repro/internal/fuzz"
	"repro/internal/memo"
	"repro/internal/scanner"
	"repro/internal/static"
	"repro/internal/wasm"
)

// triageCache memoizes static pre-analysis per module pointer, so a batch
// where many jobs share one module (ablations, seed sweeps) pays for the
// analysis once. When the engine runs with memoization, analysis misses go
// through the memo static tier, which extends the reuse to content-equal
// modules across jobs, batches and resumes. A module that fails to analyze
// is cached as nil: the job then runs dynamically — triage must never hide
// a contract it cannot model.
type triageCache struct {
	mu sync.Mutex
	//wasai:localcache pointer-identity fast path in front of the memo static tier
	reports map[*wasm.Module]*static.Report
	memo    *memo.Cache // nil when the engine runs without memoization
}

func newTriageCache(mc *memo.Cache) *triageCache {
	return &triageCache{reports: map[*wasm.Module]*static.Report{}, memo: mc}
}

// report returns the module's static report, analyzing on first use. nil
// means the module is un-analyzable (or the module itself is nil).
func (t *triageCache) report(m *wasm.Module) *static.Report {
	if m == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rep, ok := t.reports[m]; ok {
		return rep
	}
	// memo.Static is nil-safe: without a cache it just runs the analysis.
	rep, err := t.memo.Static(m, static.Analyze)
	if err != nil {
		rep = nil
	}
	t.reports[m] = rep
	return rep
}

// skippable reports whether the job can be answered without execution. The
// proof obligation: the synthesized all-negative verdict must equal what the
// fuzzer's scanner would report. That holds exactly when (a) the static
// report exists and every oracle-class candidate flag is false — each flag
// is a necessary condition for its trace oracle — and (b) the job carries no
// custom detectors and keeps no traces, since those observe behaviour the
// candidate flags say nothing about.
func skippable(job Job, rep *static.Report) bool {
	if rep == nil || rep.AnyCandidate() {
		return false
	}
	return len(job.Config.CustomDetectors) == 0 && !job.Config.KeepTraces
}

// skipResult synthesizes the outcome of a provably-negative job: the verdict
// the dynamic run would have produced (all classes clean), zero work done.
func skipResult(job Job) JobResult {
	return JobResult{
		Job:     job,
		Skipped: true,
		Result: &fuzz.Result{
			Report: scanner.NewReport(),
			Custom: map[string]bool{},
		},
	}
}
