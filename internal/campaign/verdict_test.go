package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// verdict_test.go holds the engine-level differential for the
// abstract-interpretation verdict engine: Config.Verdicts may only ever
// change which jobs execute (proven-negative skips, confirmed-first
// ordering), never the findings, and must compose with every other engine
// layer — memoization, static triage, the incremental solver, the fast
// execution engine, fault-injected retries, and journal kill+resume.
//
// Unlike the fastvm differential, only FindingsDigest is compared across
// the off/on pair: a verdict skip deliberately does no work, so the
// state digest's coverage counters differ by design (exactly as they do
// for static-triage skips).

// verdictDigests runs the same population with the flag off and on and
// requires the findings digests to match byte for byte.
func verdictDigests(t *testing.T, mk func() []Job, cfg Config) (off, on *Report) {
	t.Helper()
	offCfg, onCfg := cfg, cfg
	offCfg.Verdicts = false
	onCfg.Verdicts = true
	off, err := Run(context.Background(), mk(), offCfg)
	if err != nil {
		t.Fatalf("verdicts-off run: %v", err)
	}
	on, err = Run(context.Background(), mk(), onCfg)
	if err != nil {
		t.Fatalf("verdicts-on run: %v", err)
	}
	if got, want := on.FindingsDigest(), off.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged under -verdicts:\n got: %s\nwant: %s", got, want)
	}
	return off, on
}

// TestVerdictDigestInvariance is the flag's core contract at every worker
// count the determinism suite uses, cross-checked against a single
// reference so worker count and flag state are both witnessed at once. The
// verdicts-on runs must also be state-identical to each other across
// worker counts — skipping is deterministic, not scheduling-dependent.
func TestVerdictDigestInvariance(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	var refFindings, refOnState string
	for i, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			off, on := verdictDigests(t, mk, Config{Workers: workers, BaseSeed: 7})
			if i == 0 {
				refFindings, refOnState = off.FindingsDigest(), on.StateDigest()
				return
			}
			if off.FindingsDigest() != refFindings {
				t.Errorf("findings digest drifted across worker counts")
			}
			if on.StateDigest() != refOnState {
				t.Errorf("verdicts-on state digest drifted across worker counts")
			}
		})
	}
}

// TestVerdictResolvesJobs checks the engine actually does triage work: some
// jobs skip on all-negative proofs, and every skipped job's digest line
// still matches the executed reference (already asserted by
// verdictDigests). The canonical fixtures all carry db writes and sends, so
// the on-chain-data scenario classes are correctly Unknown on them and they
// must execute; boilerplate contracts with no host intrinsics are the
// fully-provable population, mirroring the wild distribution where
// trivial contracts dominate.
func TestVerdictResolvesJobs(t *testing.T) {
	mk := func() []Job {
		jobs := testJobs(t, 16, 30, 13)
		for i := 0; i < 4; i++ {
			c := contractgen.Trivial()
			jobs = append(jobs, Job{
				Name:   fmt.Sprintf("trivial-%d", i),
				Module: c.Module,
				ABI:    c.ABI,
				Config: fuzz.Config{Iterations: 30, SolverConflicts: 50_000},
			})
		}
		return jobs
	}
	off, on := verdictDigests(t, mk, Config{Workers: 4, BaseSeed: 7})
	if off.Skipped != 0 {
		t.Fatalf("verdicts-off run skipped %d jobs with triage disabled", off.Skipped)
	}
	if on.Skipped == 0 {
		t.Error("verdicts-on run skipped nothing: no all-negative proofs on the test population")
	}
	t.Logf("verdict skips: %d/%d jobs", on.Skipped, len(on.Results))
}

// TestVerdictComposesWithEverything stacks the verdict engine on top of
// cross-job memoization, candidate-level static triage, the incremental
// solver and the fast execution engine: five layers each promise digest
// invariance, and this is the witness that the promises hold together.
// With both triage layers on, the candidate pass skips first and the
// verdict pass only sees what it left behind.
func TestVerdictComposesWithEverything(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	verdictDigests(t, mk, Config{
		Workers:      4,
		BaseSeed:     7,
		Memo:         memo.ModeOn,
		StaticTriage: true,
		Incremental:  true,
		FastVM:       true,
	})
}

// TestVerdictComposesWithChaos injects faults with retries enabled on both
// sides of the differential. Verdict analysis runs outside the attempt
// loop on the decoded module alone, so fault injection cannot perturb it;
// skipped jobs consume no fault slots, which is safe because the injector
// plans faults per job ID, not from a shared sequence.
func TestVerdictComposesWithChaos(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	off, _ := verdictDigests(t, mk, Config{
		Workers:  4,
		BaseSeed: 7,
		Faults:   &faultinject.Plan{Seed: 99, Rate: 0.2},
		Retry:    RetryPolicy{MaxAttempts: 3},
	})
	if off.Failed != 0 {
		t.Fatalf("%d terminal failures at 20%% fault rate with retries", off.Failed)
	}
}

// TestVerdictKillResume kills a verdict-enabled campaign mid-flight and
// resumes it from the journal: the stitched result's findings must match a
// verdicts-off reference byte for byte. Replayed records short-circuit
// before the verdict check, so a job skipped in the first run stays
// skipped in the resume.
func TestVerdictKillResume(t *testing.T) {
	const nJobs = 12
	mk := func() []Job { return testJobs(t, nJobs, 30, 21) }
	cfg := Config{Workers: 4, BaseSeed: 5}
	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	vcfg := cfg
	vcfg.Verdicts = true
	vcfg.Journal = journal
	e, err := Start(ctx, vcfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		defer e.Close()
		jobs := mk()
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				return // engine cancelled mid-submission; expected
			}
		}
	}()
	completed := 0
	for jr := range e.Results() {
		if jr.Err == nil {
			completed++
		}
		if completed == 4 {
			cancel()
		}
	}
	if completed < 4 {
		t.Fatalf("interrupted run completed only %d jobs before draining", completed)
	}

	rcfg := vcfg
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed == 0 {
		t.Fatal("resumed run replayed nothing from the journal")
	}
	if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged after verdict kill+resume:\n got: %s\nwant: %s", got, want)
	}
}
