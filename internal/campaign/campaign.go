// Package campaign is the parallel campaign engine: it shards independent
// contract-fuzzing jobs across a pool of workers, each owning an isolated
// chain + fuzzer instance (campaigns share nothing but the process-wide
// solver pool), with deterministic per-job RNG seeding so results are
// identical regardless of worker count. The paper's evaluation (§4, Tables
// 4–6 and the RQ4 wild study) is embarrassingly parallel — thousands of
// contracts each fuzzed in isolation — and this engine is what lets the
// bench harness and the wild sweep use every core.
//
// The engine provides:
//
//   - bounded-queue backpressure: Submit blocks once QueueDepth jobs are
//     waiting, so a producer enumerating a huge population cannot outrun
//     the workers' memory;
//   - per-job timeout/cancel through context.Context, checked between
//     fuzzing iterations (each iteration is fuel-bounded, so even a
//     contract that spins the interpreter is interrupted promptly);
//   - panic isolation: a crashing contract (or detector) fails its own job
//     with a *PanicError, not the whole campaign;
//   - an aggregated Report: per-class flag counts, throughput, merged
//     solver statistics;
//   - resilience: failed jobs retry with deterministically degraded
//     budgets (retry.go), completed jobs stream to an append-only
//     checkpoint journal a killed campaign resumes from (journal.go), and
//     every failure carries a failure.Class so reports can say *how*
//     jobs died, not just how many.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/abi"
	"repro/internal/failure"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/memo"
	"repro/internal/wasm"
)

// Job is one contract-fuzzing campaign in a batch. Module and ABI must be
// fully decoded; the engine never mutates them (campaigns instrument a
// copy), so many jobs may share one module.
type Job struct {
	// ID orders the job in the batch and derives its RNG seed; Run assigns
	// IDs by slice index.
	ID int
	// Name labels the job in results (optional).
	Name string
	// Module and ABI identify the target contract.
	Module *wasm.Module
	ABI    *abi.ABI
	// Config is the per-job fuzzing configuration. A zero Seed is replaced
	// by the engine's deterministic derivation (BaseSeed + ID).
	Config fuzz.Config
}

// Config tunes the engine.
type Config struct {
	// Workers is the pool size. 0 uses GOMAXPROCS.
	Workers int
	// QueueDepth bounds the submit queue (backpressure). 0 uses 2×Workers.
	QueueDepth int
	// JobTimeout is the per-job deadline. 0 disables it.
	JobTimeout time.Duration
	// BaseSeed derives per-job RNG seeds: a job whose Config.Seed is zero
	// fuzzes with BaseSeed + ID. Worker scheduling never influences the
	// seed, which is what makes results worker-count invariant.
	BaseSeed int64
	// StaticTriage runs internal/static over each job's module before
	// fuzzing: jobs whose module provably cannot trip any oracle are
	// answered with a synthesized all-clean result (JobResult.Skipped), and
	// Run schedules the rest highest-static-score first. Triage never
	// changes findings — skips are provably-negative only, and reordering
	// is invisible because seeds derive from job IDs.
	StaticTriage bool
	// Verdicts runs the abstract-interpretation verdict engine
	// (internal/static/absint) over each job's module and ABI before
	// fuzzing. Jobs with all five oracle classes proven negative are
	// answered with the same synthesized all-clean result a StaticTriage
	// skip produces; jobs with a proven-positive class are scheduled
	// confirmed-first and skip the static fuel/solver budget raise. The
	// engine never changes findings — skips rest on machine-checked
	// negative proofs, reordering is invisible because seeds derive from
	// job IDs, and FindingsDigest is byte-identical with verdicts on or
	// off at any worker count.
	Verdicts bool
	// Retry re-attempts failed jobs with degraded budgets (see retry.go).
	// The zero value disables retries.
	Retry RetryPolicy
	// Journal, when non-empty, streams every completed job to an
	// append-only JSONL checkpoint file at this path (see journal.go).
	Journal string
	// Resume replays jobs already recorded in the Journal file instead of
	// re-running them; unrecorded jobs run normally. The journal's base
	// seed must match BaseSeed — resuming under a different derivation
	// would silently mix two campaigns.
	Resume bool
	// JournalSync is the journal's explicit fsync policy: fsync after
	// every N job records (the WAL header is always synced, and Close
	// syncs the remainder). 0 uses wal.DefaultSyncEvery; 1 syncs every
	// record; negative disables record fsyncs (tests). A crash loses at
	// most the last unsynced records — a resume re-runs exactly those.
	JournalSync int
	// Faults injects the planned fault into each job attempt's chain and
	// solver (see internal/faultinject). Nil injects nothing.
	Faults *faultinject.Plan
	// Memo selects the cross-job memoization scope (see internal/memo):
	// off (default) disables caching, on gives this campaign a private
	// cache, shared uses the process-wide cache. Memoization never
	// changes findings — FindingsDigest and StateDigest are byte-
	// identical with the cache on or off at any worker count.
	Memo memo.Mode
	// MemoCache overrides the cache instance (implies Memo on). The batch
	// facade uses it so module decoding at Submit time and the engine's
	// solver/static tiers share one cache.
	MemoCache *memo.Cache
	// Incremental enables the prefix-sharing solver pre-pass in every
	// job's adaptive-seed stage (see symbolic.PoolOptions.Incremental).
	// Findings digests are byte-identical on/off at any worker count;
	// faulted attempts skip the pre-pass just as they skip the memo.
	Incremental bool
	// FastVM runs every job's campaign chain on the decoded-IR execution
	// engine (exec.NewFastVM). Findings digests are byte-identical on/off
	// at any worker count; unlike Memo, the flag also applies to faulted
	// attempts — the engines are observably identical, so a fault lands
	// on the same host call either way.
	FastVM bool
	// Adaptive enables the coverage-driven scheduling layer
	// (internal/schedule) at both levels: every job runs the intra-job
	// power schedule (fuzz.Config.Adaptive), and Run becomes a two-phase
	// campaign with a fuel ledger — jobs that saturate return unspent
	// iterations at a barrier, and the campaign regrants them to
	// still-progressing jobs (see adaptive.go). Every decision is a pure
	// function of (seed, observed coverage), so adaptive campaigns are
	// digest-identical at any worker count; Adaptive=false is
	// byte-identical to the historical engine. The streaming Engine cannot
	// barrier, so Start applies the intra-job schedule only.
	Adaptive bool
	// SaturationWindow is the adaptive saturation horizon in iterations
	// (0 uses fuzz.DefaultSaturationWindow). Ignored unless Adaptive.
	SaturationWindow int
}

// memoCache resolves the cache the engine should use (nil = off).
func (c Config) memoCache() *memo.Cache {
	if c.MemoCache != nil {
		return c.MemoCache
	}
	return memo.ForMode(c.Memo)
}

// workers resolves the pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// queueDepth resolves the bounded-queue capacity.
func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 2 * c.workers()
}

// JobResult is the outcome of one job.
type JobResult struct {
	Job Job
	// Result is the campaign outcome (nil when Err is non-nil).
	Result *fuzz.Result
	// Err is the job's failure: a setup/run error, the per-job context
	// error on timeout, or a *PanicError when the job panicked.
	Err error
	// Skipped marks a job answered by static triage without execution:
	// Result is the synthesized all-clean verdict the fuzzer would have
	// produced (and its coverage/iteration counters are zero).
	Skipped bool
	// Attempts counts the tries the job consumed (0 for skipped and
	// replayed jobs, 1 when the first try decided it).
	Attempts int
	// DegradedMode labels the degradation the accepted attempt ran under
	// (retry.go's Degrade* constants); empty when the job ran as
	// configured.
	DegradedMode string
	// FailureClass classifies Err (failure.None when the job succeeded).
	FailureClass failure.Class
	// Replayed marks a result restored from a resume journal rather than
	// executed.
	Replayed bool
	// Duration is the job's wall-clock time.
	Duration time.Duration
}

// Degraded reports whether the job's accepted result ran with degraded
// budgets.
func (jr *JobResult) Degraded() bool { return jr.DegradedMode != "" }

// PanicError is a panic recovered from a job, preserving the stack so a
// crashing contract is diagnosable without taking down the campaign.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign: job panicked: %v", e.Value)
}

// Engine is a streaming worker pool: submit jobs as they are discovered,
// read results as they complete. For a known slice of jobs use Run, which
// also preserves order and aggregates.
type Engine struct {
	cfg      Config
	ctx      context.Context
	jobs     chan Job
	results  chan JobResult
	wg       sync.WaitGroup
	close    sync.Once
	triage   *triageCache           // non-nil when cfg.StaticTriage
	verdicts *verdictCache          // non-nil when cfg.Verdicts
	done     map[int]*journalRecord // journaled outcomes to replay (resume)
	jw       *journalWriter         // non-nil when cfg.Journal is set
	memo     *memo.Cache            // non-nil when memoization is active
	memoBase memo.Stats             // counters at Start (delta base for shared caches)
}

// Start launches the worker pool. The context cancels every in-flight and
// queued job; Close (or Run) must be called to release the workers. Start
// fails only on journal problems: an unopenable journal file, or resuming
// against a journal written under a different base seed.
func Start(ctx context.Context, cfg Config) (*Engine, error) {
	done, jw, err := openJournal(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		ctx:     ctx,
		jobs:    make(chan Job, cfg.queueDepth()),
		results: make(chan JobResult, cfg.queueDepth()),
		done:    done,
		jw:      jw,
	}
	e.memo = cfg.memoCache()
	e.memoBase = e.memo.Snapshot()
	if cfg.StaticTriage {
		e.triage = newTriageCache(e.memo)
	}
	if cfg.Verdicts {
		e.verdicts = newVerdictCache(e.memo)
	}
	workers := cfg.workers()
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer e.wg.Done()
			for job := range e.jobs {
				e.results <- e.runJob(job)
			}
		}()
	}
	go func() {
		e.wg.Wait()
		if e.jw != nil {
			e.jw.Close()
		}
		close(e.results)
	}()
	return e, nil
}

// Submit enqueues one job, blocking when the bounded queue is full. It
// fails (without enqueueing) once the engine's context is cancelled.
func (e *Engine) Submit(job Job) error {
	// Check cancellation first: the jobs channel is buffered, so a bare
	// select could accept a job even after the context is already done.
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("campaign: submit: %w", err)
	}
	select {
	case <-e.ctx.Done():
		return fmt.Errorf("campaign: submit: %w", e.ctx.Err())
	case e.jobs <- job:
		return nil
	}
}

// Close ends submission; Results delivers the remaining outcomes and then
// closes. Close is idempotent.
func (e *Engine) Close() { e.close.Do(func() { close(e.jobs) }) }

// MemoCache exposes the engine's memoization cache (nil when Memo is
// off). The batch facade decodes modules through it so the module tier is
// shared with the solver and static tiers.
func (e *Engine) MemoCache() *memo.Cache { return e.memo }

// MemoStats returns this campaign's cache-counter delta since Start, or
// nil when memoization is off. Against a shared cache the delta isolates
// this campaign's hits from other campaigns'.
func (e *Engine) MemoStats() *memo.Stats {
	if e.memo == nil {
		return nil
	}
	d := e.memo.Snapshot().Sub(e.memoBase)
	return &d
}

// Results streams job outcomes in completion order. The channel closes
// after Close once every submitted job has been delivered.
func (e *Engine) Results() <-chan JobResult { return e.results }

// runJob executes one campaign: journal replay, triage, then the
// retry-with-degradation loop. The whole loop runs inline in the job's
// worker — retries never reschedule — so results stay a pure function of
// the job, not of worker count or timing.
func (e *Engine) runJob(job Job) (jr JobResult) {
	start := time.Now() //wasai:nondet JobResult.Duration is reporting-only, never fed back
	jr.Job = job
	defer func() {
		if r := recover(); r != nil {
			// A panic outside an attempt (triage, bookkeeping) is terminal:
			// attempts carry their own recovery, so this one would repeat.
			jr.Result = nil
			jr.Err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
			jr.FailureClass = failure.Panic
		}
		jr.Duration = time.Since(start) //wasai:nondet reporting-only duration metric
		e.record(jr)
	}()

	if rec, ok := e.done[job.ID]; ok {
		jr = rec.toResult(job)
		return jr
	}

	if e.triage != nil && skippable(job, e.triage.report(job.Module)) {
		jr = skipResult(job)
		return jr
	}

	if e.verdicts != nil && verdictSkippable(job, e.verdicts.report(job)) {
		jr = skipResult(job)
		return jr
	}

	maxAttempts := e.cfg.Retry.maxAttempts()
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, mode, err := e.attempt(job, attempt)
		jr.Attempts = attempt + 1
		if err == nil {
			jr.Result, jr.DegradedMode = res, mode
			jr.Err, jr.FailureClass = nil, failure.None
			return jr
		}
		jr.Result = nil
		jr.Err = err
		jr.FailureClass = failure.ClassOf(err)
		if !jr.FailureClass.Retryable() || e.ctx.Err() != nil {
			break // deterministic failure, or the campaign itself is dying
		}
	}
	return jr
}

// attempt runs one try of a job under its own deadline, panic isolation,
// degradation schedule and fault-injection slice.
func (e *Engine) attempt(job Job, attempt int) (res *fuzz.Result, mode string, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = failure.Wrap(failure.Panic, &PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	ctx := e.ctx
	if e.cfg.JobTimeout > 0 {
		// Each attempt gets the full budget: a degraded retry racing the
		// remnant of the first attempt's deadline could never catch up.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.JobTimeout)
		defer cancel()
	}
	var cfg fuzz.Config
	cfg, mode = jobConfig(job, attempt, e.cfg, e.memo, e.verdicts)
	f, err := fuzz.New(job.Module, job.ABI, cfg)
	if err != nil {
		return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	res, err = f.RunContext(ctx)
	if err != nil {
		return nil, mode, fmt.Errorf("campaign: job %d (%s): %w", job.ID, job.Name, err)
	}
	return res, mode, nil
}

// record appends a decided job to the journal. Jobs cancelled by the
// engine's own context are not outcomes — a resumed run must re-execute
// them — and replayed jobs are already on disk.
func (e *Engine) record(jr JobResult) {
	if e.jw == nil || jr.Replayed {
		return
	}
	if jr.Err != nil && e.ctx.Err() != nil {
		return
	}
	e.jw.append(recordOf(jr))
}

// Run shards jobs across the pool and blocks until all complete, returning
// the aggregated report with Results in job order (jobs[i] → Results[i]).
// Job IDs are assigned from slice indices, overriding any preset ID, so
// seeds are a pure function of position. Run fails only on a cancelled
// context; per-job failures are reported in Report.Results[i].Err.
func Run(ctx context.Context, jobs []Job, cfg Config) (*Report, error) {
	if cfg.Adaptive {
		// The fuel ledger needs a barrier between the two phases, which the
		// streaming engine cannot provide; the adaptive driver runs its own
		// pool over the same per-job machinery.
		return runAdaptive(ctx, jobs, cfg)
	}
	start := time.Now() //wasai:nondet Report.Wall is reporting-only, never fed back
	e, err := Start(ctx, cfg)
	if err != nil {
		return nil, err
	}
	results := make([]JobResult, len(jobs))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for jr := range e.Results() {
			results[jr.Job.ID] = jr
		}
	}()
	order := make([]Job, len(jobs))
	for i := range jobs {
		order[i] = jobs[i]
		order[i].ID = i
	}
	if e.triage != nil || e.verdicts != nil {
		// Proven-positive jobs first, then highest static score
		// (longest-job-first packing). IDs were assigned above from slice
		// positions, so the reorder is invisible to seeds and to the
		// results slice.
		order = orderJobs(order, e.triage, e.verdicts)
	}
	var submitErr error
	for _, job := range order {
		if submitErr = e.Submit(job); submitErr != nil {
			break
		}
	}
	e.Close()
	<-done
	if submitErr != nil {
		return nil, submitErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if e.jw != nil {
		if err := e.jw.Err(); err != nil {
			// The campaign finished but its checkpoint is unreliable;
			// surfacing that beats handing back a journal that resumes
			// wrong.
			return nil, err
		}
	}
	//wasai:nondet reporting-only wall-clock aggregate
	rep := Aggregate(results, time.Since(start))
	rep.Memo = e.MemoStats()
	return rep, nil
}

// Each runs fn for indices 0..n-1 on the worker pool with the same panic
// isolation and per-item deadline as fuzzing jobs. It is the generic form
// the bench harness uses for non-WASAI detectors; the first error (in index
// order) is returned after all items finish.
func Each(ctx context.Context, n int, cfg Config, fn func(ctx context.Context, i int) error) error {
	errs := make([]error, n)
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = eachItem(ctx, cfg, i, fn)
			}
		}()
	}
loop:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break loop
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eachItem applies the per-item deadline and panic recovery around one call.
func eachItem(ctx context.Context, cfg Config, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.JobTimeout)
		defer cancel()
	}
	return fn(ctx, i)
}
