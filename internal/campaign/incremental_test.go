package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/memo"
)

// incremental_test.go holds the engine-level differential for the
// prefix-sharing solver: Config.Incremental may only ever change solver
// work, never digests, and must compose with every other engine layer —
// memoization, static triage, fault-injected retries, and journal
// kill+resume.

// incrementalDigests runs the same population with the flag off and on and
// requires both digest pairs to match.
func incrementalDigests(t *testing.T, mk func() []Job, cfg Config) (off *Report) {
	t.Helper()
	offCfg, onCfg := cfg, cfg
	offCfg.Incremental = false
	onCfg.Incremental = true
	off, err := Run(context.Background(), mk(), offCfg)
	if err != nil {
		t.Fatalf("incremental-off run: %v", err)
	}
	on, err := Run(context.Background(), mk(), onCfg)
	if err != nil {
		t.Fatalf("incremental-on run: %v", err)
	}
	if got, want := on.FindingsDigest(), off.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged under -incremental:\n got: %s\nwant: %s", got, want)
	}
	if got, want := on.StateDigest(), off.StateDigest(); got != want {
		t.Errorf("StateDigest diverged under -incremental:\n got: %s\nwant: %s", got, want)
	}
	return off
}

// TestIncrementalDigestInvariance is the flag's core contract at every
// worker count the determinism suite uses, cross-checked against a single
// reference so worker count and flag state are both witnessed at once.
func TestIncrementalDigestInvariance(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	var refFindings, refState string
	for i, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			off := incrementalDigests(t, mk, Config{Workers: workers, BaseSeed: 7})
			if i == 0 {
				refFindings, refState = off.FindingsDigest(), off.StateDigest()
				return
			}
			if off.FindingsDigest() != refFindings || off.StateDigest() != refState {
				t.Errorf("digests drifted across worker counts")
			}
		})
	}
}

// TestIncrementalComposesWithMemoAndTriage stacks the flag on top of
// cross-job memoization and static triage: the three layers each promise
// digest invariance, and this is the witness that the promises hold
// together, not just one at a time.
func TestIncrementalComposesWithMemoAndTriage(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	incrementalDigests(t, mk, Config{
		Workers:      4,
		BaseSeed:     7,
		Memo:         memo.ModeOn,
		StaticTriage: true,
	})
}

// TestIncrementalComposesWithChaos injects faults with retries enabled on
// both sides of the differential. Faulted attempts bypass the incremental
// pre-pass entirely (exactly as they bypass the memo), so the injector's
// deterministic per-query call count — and with it every verdict — must be
// unchanged by the flag.
func TestIncrementalComposesWithChaos(t *testing.T) {
	mk := func() []Job { return testJobs(t, 16, 30, 13) }
	off := incrementalDigests(t, mk, Config{
		Workers:  4,
		BaseSeed: 7,
		Faults:   &faultinject.Plan{Seed: 99, Rate: 0.2},
		Retry:    RetryPolicy{MaxAttempts: 3},
	})
	if off.Failed != 0 {
		t.Fatalf("%d terminal failures at 20%% fault rate with retries", off.Failed)
	}
}

// TestIncrementalKillResume kills an incremental campaign mid-flight and
// resumes it from the journal: the stitched result must match a fault-free
// incremental-off reference bit for bit.
func TestIncrementalKillResume(t *testing.T) {
	const nJobs = 12
	mk := func() []Job { return testJobs(t, nJobs, 30, 21) }
	cfg := Config{Workers: 4, BaseSeed: 5}
	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := cfg
	icfg.Incremental = true
	icfg.Journal = journal
	e, err := Start(ctx, icfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		defer e.Close()
		jobs := mk()
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				return // engine cancelled mid-submission; expected
			}
		}
	}()
	completed := 0
	for jr := range e.Results() {
		if jr.Err == nil {
			completed++
		}
		if completed == 4 {
			cancel()
		}
	}
	if completed < 4 {
		t.Fatalf("interrupted run completed only %d jobs before draining", completed)
	}

	rcfg := icfg
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed == 0 {
		t.Fatal("resumed run replayed nothing from the journal")
	}
	if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged after incremental kill+resume:\n got: %s\nwant: %s", got, want)
	}
	if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
		t.Errorf("StateDigest diverged after incremental kill+resume:\n got: %s\nwant: %s", got, want)
	}
}
