package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/contractgen"
	"repro/internal/failure"
	"repro/internal/memo"
	"repro/internal/schedule"
	"repro/internal/symbolic"
)

// Report aggregates a batch campaign.
type Report struct {
	// Results holds one entry per job, in job-ID order when produced by
	// Run (completion order is not observable here — determinism).
	Results []JobResult
	// Completed and Failed partition the jobs. Skipped counts the subset of
	// Completed answered by static triage without execution.
	Completed int
	Failed    int
	Skipped   int
	// PerFailure counts failed jobs by failure class — the taxonomy makes
	// "N failed" answerable: how many timed out, how many panicked, how
	// many starved the solver.
	PerFailure map[failure.Class]int
	// Degraded counts completed jobs whose accepted result ran with
	// degraded budgets; Retried counts jobs that needed more than one
	// attempt (a retried job may still have failed terminally).
	Degraded int
	Retried  int
	// Replayed counts results restored from a resume journal.
	Replayed int
	// Flagged counts completed jobs with at least one vulnerable class.
	Flagged int
	// PerClass counts completed jobs flagged per vulnerability class.
	PerClass map[contractgen.Class]int
	// Iterations and AdaptiveSeeds sum across completed jobs.
	Iterations    int
	AdaptiveSeeds int
	// SolverStats merges every job's solver statistics.
	SolverStats symbolic.SolverStats
	// Memo holds the campaign's cache-counter delta when memoization was
	// active (nil when off). Counters are reporting-only and excluded
	// from both digests: concurrent workers racing on one key make exact
	// hit counts scheduling-dependent (see internal/memo).
	Memo *memo.Stats
	// Sched sums the adaptive scheduler's counters across completed jobs,
	// plus the campaign fuel-ledger totals (filled by the adaptive driver).
	// Zero when Adaptive is off.
	Sched schedule.Counters
	// Wall is the batch wall-clock time; JobsPerSecond the throughput.
	Wall          time.Duration
	JobsPerSecond float64
}

// Aggregate folds job results into a Report. The slice is retained.
func Aggregate(results []JobResult, wall time.Duration) *Report {
	r := &Report{
		Results:    results,
		PerClass:   map[contractgen.Class]int{},
		PerFailure: map[failure.Class]int{},
		Wall:       wall,
	}
	for _, jr := range results {
		if jr.Attempts > 1 {
			r.Retried++
		}
		if jr.Replayed {
			r.Replayed++
		}
		if jr.Err != nil {
			r.Failed++
			class := jr.FailureClass
			if class == failure.None {
				class = failure.ClassOf(jr.Err)
			}
			r.PerFailure[class]++
			continue
		}
		r.Completed++
		if jr.Skipped {
			r.Skipped++
		}
		if jr.Degraded() {
			r.Degraded++
		}
		res := jr.Result
		r.Iterations += res.Iterations
		r.AdaptiveSeeds += res.AdaptiveSeeds
		r.Sched.Add(res.Sched)
		r.SolverStats.Queries += res.SolverStats.Queries
		r.SolverStats.FastPathHits += res.SolverStats.FastPathHits
		r.SolverStats.SATCalls += res.SolverStats.SATCalls
		r.SolverStats.SATConflicts += res.SolverStats.SATConflicts
		r.SolverStats.Unknowns += res.SolverStats.Unknowns
		r.SolverStats.AssumeCalls += res.SolverStats.AssumeCalls
		r.SolverStats.AssumeUnsats += res.SolverStats.AssumeUnsats
		r.SolverStats.SimplifiedUnsats += res.SolverStats.SimplifiedUnsats
		r.SolverStats.Propagations += res.SolverStats.Propagations
		flagged := false
		for _, class := range contractgen.Classes {
			if res.Report.Vulnerable[class] {
				r.PerClass[class]++
				flagged = true
			}
		}
		if flagged {
			r.Flagged++
		}
	}
	if secs := wall.Seconds(); secs > 0 {
		r.JobsPerSecond = float64(len(results)) / secs
	}
	return r
}

// FindingsDigest renders the campaign's findings as a canonical sorted
// string: one line per job (name, per-class verdicts, error if any), sorted
// by job ID. Two campaigns over the same jobs found the same vulnerabilities
// iff their digests are byte-identical — the triage differential tests
// compare exactly this (a triage skip reports the all-clean verdict the
// dynamic run would have, but does no work, so execution counters are
// deliberately excluded; see StateDigest).
func (r *Report) FindingsDigest() string {
	return r.digest(false)
}

// StateDigest is FindingsDigest plus the per-job execution counters
// (coverage, adaptive seeds). It is the stronger equivalence the
// worker-count determinism tests compare: identical state digests mean the
// runs were behaviourally identical, not merely same-verdict.
func (r *Report) StateDigest() string {
	return r.digest(true)
}

func (r *Report) digest(withState bool) string {
	lines := make([]string, 0, len(r.Results))
	for _, jr := range r.Results {
		var sb strings.Builder
		fmt.Fprintf(&sb, "job=%d name=%q", jr.Job.ID, jr.Job.Name)
		if jr.Err != nil {
			fmt.Fprintf(&sb, " err=%v", jr.Err)
		} else {
			for _, class := range contractgen.Classes {
				fmt.Fprintf(&sb, " %s=%v", class, jr.Result.Report.Vulnerable[class])
			}
			if withState {
				fmt.Fprintf(&sb, " coverage=%d adaptive=%d", jr.Result.Coverage, jr.Result.AdaptiveSeeds)
				// The adaptive scheduler's per-job state, appended only when
				// it did something, so Adaptive=off digests are unchanged.
				// Iterations join here because saturation and fuel grants
				// make them vary per job under the adaptive schedule.
				if !jr.Result.Sched.Zero() || jr.Result.Saturated {
					s := jr.Result.Sched
					fmt.Fprintf(&sb, " sched=[iters=%d energy=%d composite=%d skips=%d sat=%v]",
						jr.Result.Iterations, s.EnergyUpdates, s.CompositeFired, s.SaturationSkips, jr.Result.Saturated)
				}
			}
		}
		// Degradation is part of the finding's provenance: a verdict from a
		// concrete-only rerun is not the same claim as a full-budget one.
		// Appended only when set, so undegraded digests are unchanged.
		if jr.DegradedMode != "" {
			fmt.Fprintf(&sb, " degraded=%s", jr.DegradedMode)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// String summarizes the report (throughput line + per-class counts).
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign: %d jobs (%d completed, %d skipped, %d failed) in %.1fs (%.1f jobs/s), %d flagged\n",
		len(r.Results), r.Completed, r.Skipped, r.Failed, r.Wall.Seconds(), r.JobsPerSecond, r.Flagged)
	if r.Retried > 0 || r.Degraded > 0 || r.Replayed > 0 {
		fmt.Fprintf(&sb, "  resilience: %d retried, %d degraded, %d replayed from journal\n",
			r.Retried, r.Degraded, r.Replayed)
	}
	if r.Memo != nil {
		fmt.Fprintf(&sb, "  memo: %s\n", r.Memo)
	}
	if !r.Sched.Zero() {
		fmt.Fprintf(&sb, "  adaptive: %d energy updates, %d composite arms, %d saturated jobs, %d/%d fuel reallocated\n",
			r.Sched.EnergyUpdates, r.Sched.CompositeFired, r.Sched.SaturatedJobs, r.Sched.FuelReallocated, r.Sched.FuelReturned)
	}
	for _, class := range failure.Classes {
		if n := r.PerFailure[class]; n > 0 {
			fmt.Fprintf(&sb, "  failures[%s] %d\n", class, n)
		}
	}
	if n := r.PerFailure[failure.Unclassified]; n > 0 {
		fmt.Fprintf(&sb, "  failures[%s] %d\n", failure.Unclassified, n)
	}
	for _, class := range contractgen.Classes {
		if n := r.PerClass[class]; n > 0 {
			fmt.Fprintf(&sb, "  %-14s %d\n", class, n)
		}
	}
	return sb.String()
}
