package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
)

// onchain_determinism_test.go pins the engine contract for the on-chain-data
// scenario oracles (StateTamper, OrderDep, CrossContract): their verdicts
// ride the same digest-invariance promises as the five trace oracles. The
// scenario driver replays fixed scripts on fresh held-block chains, so
// nothing about worker scheduling, memoization, triage, the incremental
// solver, the fast execution engine, or a journal kill+resume may move a
// scenario verdict.

// onchainSpecs is the deterministic spec list behind onchainJobs; job IDs
// index into it, so runs can be scored against generator ground truth.
func onchainSpecs() []contractgen.Spec {
	classes := []contractgen.Class{
		contractgen.ClassStateTamper,
		contractgen.ClassOrderDep,
		contractgen.ClassCrossContract,
	}
	var specs []contractgen.Spec
	for _, seed := range []int64{3, 9} {
		for _, class := range classes {
			for _, vul := range []bool{true, false} {
				specs = append(specs, contractgen.Spec{Class: class, Vulnerable: vul, Seed: seed})
			}
		}
	}
	return specs
}

// onchainJobs builds a population of only the scenario-class fixtures, both
// polarities across a few generator seeds.
func onchainJobs(tb testing.TB, iterations int) []Job {
	tb.Helper()
	var jobs []Job
	for _, spec := range onchainSpecs() {
		c, err := contractgen.Generate(spec)
		if err != nil {
			tb.Fatalf("generate %v/%v seed=%d: %v", spec.Class, spec.Vulnerable, spec.Seed, err)
		}
		jobs = append(jobs, Job{
			Name:   fmt.Sprintf("%s-vul=%v-seed=%d", spec.Class, spec.Vulnerable, spec.Seed),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{Iterations: iterations, SolverConflicts: 50_000},
		})
	}
	return jobs
}

// checkOnchainVerdicts guards against vacuous digest equality: every
// vulnerable scenario fixture must be flagged for its own class and every
// safe one must be clean, in whichever run the caller hands over.
func checkOnchainVerdicts(t *testing.T, rep *Report) {
	t.Helper()
	specs := onchainSpecs()
	for _, jr := range rep.Results {
		if jr.Err != nil {
			t.Fatalf("job %q failed: %v", jr.Job.Name, jr.Err)
		}
		if jr.Skipped {
			t.Fatalf("job %q skipped: scenario fixtures carry db writes and sends, no triage layer may prove them clean", jr.Job.Name)
		}
		spec := specs[jr.Job.ID]
		if got := jr.Result.Report.Vulnerable[spec.Class]; got != spec.Vulnerable {
			t.Errorf("%s: %s verdict = %v, ground truth %v", jr.Job.Name, spec.Class, got, spec.Vulnerable)
		}
	}
}

// TestOnChainOracleDeterminism runs the scenario-class population at 1, 4
// and 8 workers, plain and with every engine layer stacked (memoization,
// candidate triage, verdict triage, incremental solver, fast VM), and
// requires byte-identical findings digests throughout — plus identical
// state digests across worker counts of the plain configuration.
func TestOnChainOracleDeterminism(t *testing.T) {
	mk := func() []Job { return onchainJobs(t, 30) }
	ref, err := Run(context.Background(), mk(), Config{Workers: 1, BaseSeed: 7})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	checkOnchainVerdicts(t, ref)
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plain, err := Run(context.Background(), mk(), Config{Workers: workers, BaseSeed: 7})
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			if got, want := plain.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("plain FindingsDigest diverged:\n got: %s\nwant: %s", got, want)
			}
			if got, want := plain.StateDigest(), ref.StateDigest(); got != want {
				t.Errorf("plain StateDigest diverged:\n got: %s\nwant: %s", got, want)
			}
			layered, err := Run(context.Background(), mk(), Config{
				Workers:      workers,
				BaseSeed:     7,
				Memo:         memo.ModeOn,
				StaticTriage: true,
				Verdicts:     true,
				Incremental:  true,
				FastVM:       true,
			})
			if err != nil {
				t.Fatalf("layered run: %v", err)
			}
			checkOnchainVerdicts(t, layered)
			if got, want := layered.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("layered FindingsDigest diverged:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestOnChainOracleKillResume composes the scenario oracles with the
// journal: a fully layered campaign killed mid-flight and resumed must
// reproduce the uninterrupted findings digest.
func TestOnChainOracleKillResume(t *testing.T) {
	mk := func() []Job { return onchainJobs(t, 30) }
	cfg := Config{
		Workers:     4,
		BaseSeed:    5,
		Memo:        memo.ModeOn,
		Verdicts:    true,
		Incremental: true,
		FastVM:      true,
	}
	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	checkOnchainVerdicts(t, ref)

	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	icfg := cfg
	icfg.Journal = journal
	e, err := Start(ctx, icfg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		defer e.Close()
		jobs := mk()
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				return // engine cancelled mid-submission; expected
			}
		}
	}()
	completed := 0
	for jr := range e.Results() {
		if jr.Err == nil {
			completed++
		}
		if completed == 3 {
			cancel()
		}
	}
	if completed < 3 {
		t.Fatalf("interrupted run completed only %d jobs before draining", completed)
	}

	rcfg := cfg
	rcfg.Journal = journal
	rcfg.Resume = true
	rep, err := Run(context.Background(), mk(), rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Replayed == 0 {
		t.Fatal("resumed run replayed nothing from the journal")
	}
	if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
		t.Errorf("FindingsDigest diverged after kill+resume:\n got: %s\nwant: %s", got, want)
	}
}
