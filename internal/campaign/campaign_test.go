package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/fuzz"
)

// testJobs builds n mixed-class contracts and wraps them as engine jobs
// with the given per-campaign budget. Seeds are left zero so the engine
// derives them (BaseSeed + ID).
func testJobs(tb testing.TB, n, iterations int, seed int64) []Job {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		class := contractgen.Classes[i%len(contractgen.Classes)]
		spec := contractgen.RandomSpec(class, i%2 == 0, rng)
		c, err := contractgen.Generate(spec)
		if err != nil {
			tb.Fatalf("generate contract %d: %v", i, err)
		}
		jobs[i] = Job{
			Name:   fmt.Sprintf("contract-%d", i),
			Module: c.Module,
			ABI:    c.ABI,
			Config: fuzz.Config{Iterations: iterations, SolverConflicts: 50_000},
		}
	}
	return jobs
}

func TestRunBasic(t *testing.T) {
	jobs := testJobs(t, 10, 40, 7)
	rep, err := Run(context.Background(), jobs, Config{Workers: 4, BaseSeed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != len(jobs) || rep.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", rep.Completed, rep.Failed, len(jobs))
	}
	for i, jr := range rep.Results {
		if jr.Job.ID != i {
			t.Fatalf("result %d holds job %d: Run must return results in job order", i, jr.Job.ID)
		}
		if jr.Result == nil {
			t.Fatalf("job %d has no result", i)
		}
		if jr.Result.Iterations != 40 {
			t.Fatalf("job %d ran %d iterations, want 40", i, jr.Result.Iterations)
		}
	}
	// Half the contracts are generated vulnerable; the campaign must flag a
	// good share of them.
	if rep.Flagged == 0 {
		t.Fatal("campaign flagged nothing on a half-vulnerable batch")
	}
	if rep.SolverStats.Queries == 0 {
		t.Fatal("no solver activity aggregated")
	}
	if rep.JobsPerSecond <= 0 {
		t.Fatalf("throughput %v not positive", rep.JobsPerSecond)
	}
	if got := len(rep.PerClass); got == 0 {
		t.Fatal("no per-class counts")
	}
}

func TestEngineStreaming(t *testing.T) {
	// Bounded queue of 1 with 2 workers: submission interleaves with
	// completion, results stream in completion order and close after Close.
	jobs := testJobs(t, 6, 20, 11)
	e, err := Start(context.Background(), Config{Workers: 2, QueueDepth: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := range jobs {
			jobs[i].ID = i
			if err := e.Submit(jobs[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		e.Close()
	}()
	seen := map[int]bool{}
	for jr := range e.Results() {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", jr.Job.ID, jr.Err)
		}
		if seen[jr.Job.ID] {
			t.Fatalf("job %d delivered twice", jr.Job.ID)
		}
		seen[jr.Job.ID] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(seen), len(jobs))
	}
}

func TestSubmitAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e, err := Start(ctx, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	jobs := testJobs(t, 1, 5, 3)
	if err := e.Submit(jobs[0]); err == nil {
		t.Fatal("Submit succeeded after context cancellation")
	}
	e.Close()
	for range e.Results() {
	}
}

func TestEachPanicIsolation(t *testing.T) {
	err := Each(context.Background(), 8, Config{Workers: 4}, func(_ context.Context, i int) error {
		if i == 3 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not preserved: %+v", pe)
	}
}

func TestEachFirstErrorInIndexOrder(t *testing.T) {
	err := Each(context.Background(), 10, Config{Workers: 5}, func(_ context.Context, i int) error {
		if i >= 4 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 4 failed" {
		t.Fatalf("want first error in index order (item 4), got %v", err)
	}
}
