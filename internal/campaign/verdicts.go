package campaign

import (
	"sort"
	"sync"

	"repro/internal/abi"
	"repro/internal/eos"
	"repro/internal/memo"
	"repro/internal/static/absint"
	"repro/internal/wasm"
)

// verdicts.go wires the abstract-interpretation verdict engine
// (internal/static/absint) into campaign triage. The engine upgrades the
// boolean candidate flags of internal/static to three-valued per-class
// verdicts, and the campaign consumes exactly the two proof directions:
//
//   - a job with every class ProvenNegative — the five trace-oracle
//     classes and the three on-chain-data scenario classes — is answered
//     with the same synthesized all-clean result a static-triage skip
//     produces (each negative proof says the dynamic oracle cannot fire on
//     any harness execution, scenario replays included, so the job's
//     findings-digest line is unchanged);
//   - a job with any ProvenPositive class is scheduled confirmed-first
//     (reordering is digest-invisible: seeds derive from job IDs) and
//     skips the static budget raise — the positive witness already fits
//     the base budget, so the raise would only add headroom the proof
//     shows is not needed to surface the finding.
//
// Everything else — Unknown verdicts, jobs with custom detectors or trace
// capture — runs the full dynamic campaign unchanged.

// verdictKey identifies one (module, ABI) pair by pointer. Jobs sharing
// decoded forms (ablations, seed sweeps, memoized decodes) share the
// analysis; the memo verdict tier extends reuse to content-equal modules.
type verdictKey struct {
	m *wasm.Module
	a *abi.ABI
}

// verdictCache memoizes absint analysis per (module, ABI) pointer pair in
// front of the memo verdict tier, mirroring triageCache for the candidate
// pass.
type verdictCache struct {
	mu sync.Mutex
	//wasai:localcache pointer-identity fast path in front of the memo verdict tier
	reports map[verdictKey]*absint.Report
	memo    *memo.Cache // nil when the engine runs without memoization
}

func newVerdictCache(mc *memo.Cache) *verdictCache {
	return &verdictCache{reports: map[verdictKey]*absint.Report{}, memo: mc}
}

// report returns the job's verdict report, analyzing on first use. nil
// means the job has no module to analyze.
func (v *verdictCache) report(job Job) *absint.Report {
	if job.Module == nil {
		return nil
	}
	key := verdictKey{m: job.Module, a: job.ABI}
	v.mu.Lock()
	defer v.mu.Unlock()
	if rep, ok := v.reports[key]; ok {
		return rep
	}
	// memo.Verdict is nil-safe: without a cache it just runs the analysis.
	rep := v.memo.Verdict(job.Module, abiActions(job.ABI), absint.Analyze)
	v.reports[key] = rep
	return rep
}

// abiActions lists the ABI's action names in declaration order (the same
// order the fuzzer derives its action list, so MissAuth quantifies over
// identical scopes statically and dynamically).
func abiActions(a *abi.ABI) []eos.Name {
	if a == nil {
		return nil
	}
	out := make([]eos.Name, 0, len(a.Actions))
	for _, act := range a.Actions {
		out = append(out, act.Name)
	}
	return out
}

// verdictSkippable reports whether the verdict report licenses answering
// the job without execution: every class proven negative, and no observer
// (custom detector, trace capture) the proofs say nothing about.
func verdictSkippable(job Job, rep *absint.Report) bool {
	if rep == nil || !rep.AllNegative() {
		return false
	}
	return len(job.Config.CustomDetectors) == 0 && !job.Config.KeepTraces
}

// confirmedFirstBoost outranks every static triage score (Score sums
// bounded structural counts, far below 2^20), so proven-positive jobs
// always schedule ahead of merely-suspicious ones.
const confirmedFirstBoost = 1 << 20

// orderJobs sorts jobs for scheduling: proven-positive jobs first
// (confirmed findings surface immediately), then descending static triage
// score (longest-job-first packing), ties broken by ascending ID. Either
// cache may be nil. Reordering cannot change findings: seeds derive from
// job IDs (which are preserved), results are indexed by ID, and jobs share
// no state.
func orderJobs(jobs []Job, t *triageCache, v *verdictCache) []Job {
	type scored struct {
		job   Job
		score int
	}
	out := make([]scored, len(jobs))
	for i, job := range jobs {
		s := 0
		if t != nil {
			if rep := t.report(job.Module); rep != nil {
				s = rep.Score()
			}
		}
		if v != nil {
			if rep := v.report(job); rep != nil && rep.AnyPositive() {
				s += confirmedFirstBoost
			}
		}
		out[i] = scored{job: job, score: s}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].job.ID < out[j].job.ID
	})
	ordered := make([]Job, len(out))
	for i := range out {
		ordered[i] = out[i].job
	}
	return ordered
}
