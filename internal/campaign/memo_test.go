package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/memo"
)

// TestMemoDifferentialWorkers is the cache layer's hard invariant: the
// same batch run cache-off and cache-on produces byte-identical
// FindingsDigest and StateDigest at 1, 4 and 8 workers — and the cache
// actually absorbs work (non-zero hits, no extra solving).
func TestMemoDifferentialWorkers(t *testing.T) {
	mk := func() []Job { return testJobs(t, 18, 30, 42) }
	ref, err := Run(context.Background(), mk(), Config{Workers: 1, BaseSeed: 7})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for _, mode := range []memo.Mode{memo.ModeOff, memo.ModeOn} {
				rep, err := Run(context.Background(), mk(), Config{Workers: workers, BaseSeed: 7, Memo: mode})
				if err != nil {
					t.Fatalf("memo=%s: %v", mode, err)
				}
				if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
					t.Errorf("memo=%s FindingsDigest diverged:\n got: %s\nwant: %s", mode, got, want)
				}
				if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
					t.Errorf("memo=%s StateDigest diverged:\n got: %s\nwant: %s", mode, got, want)
				}
				if mode == memo.ModeOn {
					if rep.Memo == nil {
						t.Fatal("memo=on report carries no cache stats")
					}
					if rep.Memo.SolverHits == 0 {
						t.Error("memo=on run recorded zero solver cache hits; nothing was memoized")
					}
					if rep.SolverStats.SATCalls > ref.SolverStats.SATCalls {
						t.Errorf("memo=on did more DPLL work than off: %d > %d",
							rep.SolverStats.SATCalls, ref.SolverStats.SATCalls)
					}
				} else if rep.Memo != nil {
					t.Error("memo=off report carries cache stats")
				}
			}
		})
	}
}

// TestMemoComposesWithTriageAndRetries runs the cache together with static
// triage and the retry policy: the composed configuration must still match
// the plain run's findings (triage legitimately changes StateDigest for
// skipped jobs, so only FindingsDigest is compared).
func TestMemoComposesWithTriageAndRetries(t *testing.T) {
	mk := func() []Job { return testJobs(t, 12, 25, 11) }
	ref, err := Run(context.Background(), mk(), Config{Workers: 2, BaseSeed: 3})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	rep, err := Run(context.Background(), mk(), Config{
		Workers:      4,
		BaseSeed:     3,
		Memo:         memo.ModeOn,
		StaticTriage: true,
		Retry:        RetryPolicy{MaxAttempts: 2},
	})
	if err != nil {
		t.Fatalf("composed run: %v", err)
	}
	if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
		t.Errorf("memo+triage+retry FindingsDigest diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestMemoKillResumeDigestIdentity composes the cache with the journal:
// a memoized campaign killed mid-flight and resumed (with a fresh cache —
// ModeOn — and again with the process-shared cache) must reproduce the
// uninterrupted memo-off digests.
func TestMemoKillResumeDigestIdentity(t *testing.T) {
	const nJobs = 12
	mk := func() []Job { return testJobs(t, nJobs, 30, 21) }
	cfg := Config{Workers: 4, BaseSeed: 5}
	ref, err := Run(context.Background(), mk(), cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, mode := range []memo.Mode{memo.ModeOn, memo.ModeShared} {
		t.Run(string(mode), func(t *testing.T) {
			journal := filepath.Join(t.TempDir(), "campaign.jsonl")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			icfg := cfg
			icfg.Journal = journal
			icfg.Memo = mode
			e, err := Start(ctx, icfg)
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			go func() {
				defer e.Close()
				jobs := mk()
				for i := range jobs {
					jobs[i].ID = i
					if err := e.Submit(jobs[i]); err != nil {
						return
					}
				}
			}()
			completed := 0
			for jr := range e.Results() {
				if jr.Err == nil {
					completed++
				}
				if completed == 4 {
					cancel()
				}
			}
			if completed < 4 {
				t.Fatalf("interrupted run completed only %d jobs before draining", completed)
			}

			rcfg := cfg
			rcfg.Journal = journal
			rcfg.Resume = true
			rcfg.Memo = mode
			rep, err := Run(context.Background(), mk(), rcfg)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if rep.Replayed == 0 {
				t.Fatal("resumed run replayed nothing from the journal")
			}
			if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("FindingsDigest diverged after kill+resume with memo:\n got: %s\nwant: %s", got, want)
			}
			if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
				t.Errorf("StateDigest diverged after kill+resume with memo:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestFaultMemoMatrix is the fault×memo hygiene proof: for every fault
// kind, a faulted campaign sharing a cache must (a) never read or write
// the solver tier from faulted attempts — with every attempt of every job
// faulted, the shared cache's solver counters stay zero — and (b) never
// poison shared state: a clean campaign run against the post-fault cache
// must match the memo-off reference byte for byte.
func TestFaultMemoMatrix(t *testing.T) {
	mk := func() []Job { return testJobs(t, 8, 20, 31) }
	ref, err := Run(context.Background(), mk(), Config{Workers: 2, BaseSeed: 13})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	for _, kind := range faultinject.AllKinds {
		t.Run(kind.String(), func(t *testing.T) {
			cache := memo.New()
			// Fault every attempt of every job so no attempt is eligible
			// for memoization; terminal failures are expected and fine.
			plan := &faultinject.Plan{Seed: 99, Rate: 1.0, Kinds: []faultinject.Kind{kind}, Attempts: 1 << 20}
			_, err := Run(context.Background(), mk(), Config{
				Workers:   2,
				BaseSeed:  13,
				Faults:    plan,
				Retry:     RetryPolicy{MaxAttempts: 2},
				MemoCache: cache,
			})
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			st := cache.Snapshot()
			if st.SolverHits != 0 || st.SolverUnsatHits != 0 || st.SolverMisses != 0 {
				t.Fatalf("faulted attempts touched the solver cache: %+v", st)
			}

			// The same cache then serves a clean campaign: if any faulted
			// state leaked in, these digests change.
			rep, err := Run(context.Background(), mk(), Config{Workers: 4, BaseSeed: 13, MemoCache: cache})
			if err != nil {
				t.Fatalf("clean run on post-fault cache: %v", err)
			}
			if got, want := rep.FindingsDigest(), ref.FindingsDigest(); got != want {
				t.Errorf("FindingsDigest diverged on post-fault cache:\n got: %s\nwant: %s", got, want)
			}
			if got, want := rep.StateDigest(), ref.StateDigest(); got != want {
				t.Errorf("StateDigest diverged on post-fault cache:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestMemoFaultedAttemptRetryUsesCache checks the converse boundary: with
// the default plan (only attempt 0 faulted), the retry attempt is clean
// and may use the cache — recovery must not disable memoization forever.
func TestMemoFaultedAttemptRetryUsesCache(t *testing.T) {
	mk := func() []Job { return testJobs(t, 8, 20, 31) }
	cache := memo.New()
	plan := &faultinject.Plan{Seed: 4, Rate: 0.5}
	rep, err := Run(context.Background(), mk(), Config{
		Workers:   2,
		BaseSeed:  13,
		Faults:    plan,
		Retry:     RetryPolicy{MaxAttempts: 3},
		MemoCache: cache,
	})
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if rep.Retried == 0 {
		t.Skip("plan faulted no jobs at this seed; nothing to check")
	}
	st := cache.Snapshot()
	if st.SolverMisses == 0 {
		t.Error("clean retry attempts never consulted the cache")
	}
}
