// Package eos implements the EOSIO primitive value types used throughout
// the chain simulator and the fuzzer: account/action names (base-32 packed
// uint64), token symbols, and assets, together with their canonical binary
// serialization.
package eos

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Name is an EOSIO name: up to 12 characters from ".12345abcdefghijklmnopqrstuvwxyz"
// packed big-endian into a uint64, 5 bits per character (the 13th character,
// when present, uses the remaining 4 bits).
type Name uint64

// ErrInvalidName reports a string that cannot be encoded as an EOSIO name.
var ErrInvalidName = errors.New("eos: invalid name")

const nameAlphabet = ".12345abcdefghijklmnopqrstuvwxyz"

func charToSymbol(c byte) (uint64, bool) {
	switch {
	case c >= 'a' && c <= 'z':
		return uint64(c-'a') + 6, true
	case c >= '1' && c <= '5':
		return uint64(c-'1') + 1, true
	case c == '.':
		return 0, true
	default:
		return 0, false
	}
}

// NewName encodes s as an EOSIO name. The string may contain at most 13
// characters; the 13th must encode in 4 bits (".12345abcdefghij").
func NewName(s string) (Name, error) {
	if len(s) > 13 {
		return 0, fmt.Errorf("%w: %q is longer than 13 characters", ErrInvalidName, s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c, ok := charToSymbol(s[i])
		if !ok {
			return 0, fmt.Errorf("%w: %q contains invalid character %q", ErrInvalidName, s, s[i])
		}
		if i < 12 {
			v |= (c & 0x1f) << uint(64-5*(i+1))
		} else {
			if c > 0x0f {
				return 0, fmt.Errorf("%w: %q 13th character out of range", ErrInvalidName, s)
			}
			v |= c
		}
	}
	return Name(v), nil
}

// MustName is NewName for trusted literals; it panics on invalid input.
// Use only with compile-time constant strings.
func MustName(s string) Name {
	n, err := NewName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String decodes the packed representation back to text, trimming trailing
// dots as EOSIO does.
func (n Name) String() string {
	if n == 0 {
		return ""
	}
	var sb strings.Builder
	v := uint64(n)
	for i := 0; i < 13; i++ {
		var c uint64
		if i < 12 {
			c = (v >> uint(64-5*(i+1))) & 0x1f
		} else {
			c = v & 0x0f
		}
		sb.WriteByte(nameAlphabet[c])
	}
	return strings.TrimRight(sb.String(), ".")
}

// Empty reports whether the name is the zero name.
func (n Name) Empty() bool { return n == 0 }

// MarshalJSON renders the name as its textual form.
func (n Name) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.String())
}

// UnmarshalJSON parses the textual form.
func (n *Name) UnmarshalJSON(p []byte) error {
	var s string
	if err := json.Unmarshal(p, &s); err != nil {
		return err
	}
	v, err := NewName(s)
	if err != nil {
		return err
	}
	*n = v
	return nil
}

// Well-known account and action names.
var (
	// TokenContract is the official EOS token issuer account.
	TokenContract = MustName("eosio.token")
	// ActionTransfer is the "transfer" action name.
	ActionTransfer = MustName("transfer")
	// ActiveAuth is the standard "active" permission name.
	ActiveAuth = MustName("active")
)
