package eos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Symbol is an EOSIO token symbol: precision in the low byte and up to 7
// upper-case ASCII letters in the higher bytes.
type Symbol uint64

// ErrInvalidSymbol reports a malformed symbol literal.
var ErrInvalidSymbol = errors.New("eos: invalid symbol")

// NewSymbol builds a symbol from a precision and a ticker code such as "EOS".
func NewSymbol(precision uint8, code string) (Symbol, error) {
	if len(code) == 0 || len(code) > 7 {
		return 0, fmt.Errorf("%w: code %q must be 1-7 characters", ErrInvalidSymbol, code)
	}
	v := uint64(precision)
	for i := 0; i < len(code); i++ {
		c := code[i]
		if c < 'A' || c > 'Z' {
			return 0, fmt.Errorf("%w: code %q must be upper-case A-Z", ErrInvalidSymbol, code)
		}
		v |= uint64(c) << uint(8*(i+1))
	}
	return Symbol(v), nil
}

// MustSymbol is NewSymbol for trusted literals; it panics on invalid input.
func MustSymbol(precision uint8, code string) Symbol {
	s, err := NewSymbol(precision, code)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns the number of decimal places.
func (s Symbol) Precision() uint8 { return uint8(s) }

// Code returns the ticker string.
func (s Symbol) Code() string {
	var sb strings.Builder
	v := uint64(s) >> 8
	for v != 0 {
		sb.WriteByte(byte(v & 0xff))
		v >>= 8
	}
	return sb.String()
}

// String renders e.g. "4,EOS".
func (s Symbol) String() string { return fmt.Sprintf("%d,%s", s.Precision(), s.Code()) }

// EOSSymbol is the official EOS token symbol ("4,EOS").
var EOSSymbol = MustSymbol(4, "EOS")

// Asset is a token quantity: a signed amount scaled by the symbol precision.
type Asset struct {
	Amount int64
	Symbol Symbol
}

// NewAsset builds an asset from a raw (already scaled) amount.
func NewAsset(amount int64, sym Symbol) Asset { return Asset{Amount: amount, Symbol: sym} }

// EOS builds an EOS asset from a raw amount in 1e-4 EOS units.
func EOS(amount int64) Asset { return Asset{Amount: amount, Symbol: EOSSymbol} }

// ParseAsset parses the canonical textual form, e.g. "10.0000 EOS".
func ParseAsset(s string) (Asset, error) {
	parts := strings.SplitN(strings.TrimSpace(s), " ", 2)
	if len(parts) != 2 {
		return Asset{}, fmt.Errorf("eos: asset %q: want \"<amount> <CODE>\"", s)
	}
	numPart, code := parts[0], parts[1]
	var precision uint8
	intPart := numPart
	fracPart := ""
	if dot := strings.IndexByte(numPart, '.'); dot >= 0 {
		intPart, fracPart = numPart[:dot], numPart[dot+1:]
		if len(fracPart) > 18 {
			return Asset{}, fmt.Errorf("eos: asset %q: precision too large", s)
		}
		precision = uint8(len(fracPart))
	}
	neg := false
	if strings.HasPrefix(intPart, "-") {
		neg = true
		intPart = intPart[1:]
	}
	whole, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return Asset{}, fmt.Errorf("eos: asset %q: %w", s, err)
	}
	var frac int64
	if fracPart != "" {
		frac, err = strconv.ParseInt(fracPart, 10, 64)
		if err != nil {
			return Asset{}, fmt.Errorf("eos: asset %q: %w", s, err)
		}
	}
	scale := int64(1)
	for i := uint8(0); i < precision; i++ {
		scale *= 10
	}
	amount := whole*scale + frac
	if neg {
		amount = -amount
	}
	sym, err := NewSymbol(precision, code)
	if err != nil {
		return Asset{}, err
	}
	return Asset{Amount: amount, Symbol: sym}, nil
}

// MustAsset is ParseAsset for trusted literals; it panics on invalid input.
func MustAsset(s string) Asset {
	a, err := ParseAsset(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the canonical textual form, e.g. "10.0000 EOS".
func (a Asset) String() string {
	p := int64(1)
	for i := uint8(0); i < a.Symbol.Precision(); i++ {
		p *= 10
	}
	amt := a.Amount
	sign := ""
	if amt < 0 {
		sign = "-"
		amt = -amt
	}
	if p == 1 {
		return fmt.Sprintf("%s%d %s", sign, amt, a.Symbol.Code())
	}
	return fmt.Sprintf("%s%d.%0*d %s", sign, amt/p, int(a.Symbol.Precision()), amt%p, a.Symbol.Code())
}

// Add returns a+b; the symbols must match.
func (a Asset) Add(b Asset) (Asset, error) {
	if a.Symbol != b.Symbol {
		return Asset{}, fmt.Errorf("eos: symbol mismatch: %s vs %s", a.Symbol, b.Symbol)
	}
	return Asset{Amount: a.Amount + b.Amount, Symbol: a.Symbol}, nil
}

// Sub returns a-b; the symbols must match.
func (a Asset) Sub(b Asset) (Asset, error) {
	if a.Symbol != b.Symbol {
		return Asset{}, fmt.Errorf("eos: symbol mismatch: %s vs %s", a.Symbol, b.Symbol)
	}
	return Asset{Amount: a.Amount - b.Amount, Symbol: a.Symbol}, nil
}
