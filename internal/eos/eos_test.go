package eos

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func TestNameRoundTrip(t *testing.T) {
	cases := []string{
		"a", "z", "eosio", "eosio.token", "fake.notif", "batdappboomx",
		"abcdefghijkl", "a1b2c3", "5name", "zzzzzzzzzzzz",
	}
	for _, s := range cases {
		n, err := NewName(s)
		if err != nil {
			t.Fatalf("NewName(%q): %v", s, err)
		}
		if got := n.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestNameKnownValue(t *testing.T) {
	// Cross-checked against the EOSIO implementation.
	n := MustName("eosio.token")
	if uint64(n) != 0x5530ea033482a600 {
		t.Errorf("eosio.token = %#x, want 0x5530ea033482a600", uint64(n))
	}
}

func TestNameInvalid(t *testing.T) {
	for _, s := range []string{"UPPER", "has space", "0zero", "toolongname444", "x_y"} {
		if _, err := NewName(s); !errors.Is(err, ErrInvalidName) {
			t.Errorf("NewName(%q): want ErrInvalidName, got %v", s, err)
		}
	}
}

func TestNameEmpty(t *testing.T) {
	n, err := NewName("")
	if err != nil {
		t.Fatalf("empty name: %v", err)
	}
	if !n.Empty() || n.String() != "" {
		t.Errorf("empty name: %v %q", n.Empty(), n.String())
	}
}

func TestNameOrderingMatchesString(t *testing.T) {
	// EOSIO name ordering is lexicographic in the custom alphabet; just
	// verify the packing is big-endian-first so prefixes sort early.
	a, b := MustName("aaa"), MustName("aab")
	if a >= b {
		t.Errorf("aaa (%d) should sort before aab (%d)", a, b)
	}
}

func TestNameJSON(t *testing.T) {
	n := MustName("eosio.token")
	p, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	if string(p) != `"eosio.token"` {
		t.Errorf("marshal = %s", p)
	}
	var back Name
	if err := json.Unmarshal(p, &back); err != nil {
		t.Fatal(err)
	}
	if back != n {
		t.Errorf("unmarshal = %v, want %v", back, n)
	}
	if err := json.Unmarshal([]byte(`"INVALID"`), &back); err == nil {
		t.Error("want error for invalid name")
	}
}

func TestNameRoundTripQuick(t *testing.T) {
	const alpha = "12345abcdefghijklmnopqrstuvwxyz"
	f := func(seed uint64, lenSeed uint8) bool {
		n := int(lenSeed%12) + 1
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alpha[(seed>>uint(i*5))%uint64(len(alpha))]
		}
		s := string(buf)
		name, err := NewName(s)
		return err == nil && name.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymbol(t *testing.T) {
	s := MustSymbol(4, "EOS")
	if s.Precision() != 4 || s.Code() != "EOS" {
		t.Errorf("symbol: precision=%d code=%q", s.Precision(), s.Code())
	}
	if s.String() != "4,EOS" {
		t.Errorf("String = %q", s.String())
	}
	// The constant the paper's verification snippet uses.
	if uint64(s) != 1397703940 {
		t.Errorf("4,EOS = %d, want 1397703940", uint64(s))
	}
}

func TestSymbolInvalid(t *testing.T) {
	for _, code := range []string{"", "eos", "TOOLONGX", "E S"} {
		if _, err := NewSymbol(4, code); !errors.Is(err, ErrInvalidSymbol) {
			t.Errorf("NewSymbol(%q): want error, got %v", code, err)
		}
	}
}

func TestAssetParseFormat(t *testing.T) {
	cases := []struct {
		in     string
		amount int64
	}{
		{"10.0000 EOS", 100000},
		{"0.0001 EOS", 1},
		{"-2.5000 EOS", -25000},
		{"100 RAM", 100},
	}
	for _, tt := range cases {
		a, err := ParseAsset(tt.in)
		if err != nil {
			t.Fatalf("ParseAsset(%q): %v", tt.in, err)
		}
		if a.Amount != tt.amount {
			t.Errorf("%q amount = %d, want %d", tt.in, a.Amount, tt.amount)
		}
		if got := a.String(); got != tt.in {
			t.Errorf("format %q -> %q", tt.in, got)
		}
	}
}

func TestAssetParseErrors(t *testing.T) {
	for _, s := range []string{"", "10.0000", "x EOS", "10.0000EOS"} {
		if _, err := ParseAsset(s); err == nil {
			t.Errorf("ParseAsset(%q): want error", s)
		}
	}
}

func TestAssetArithmetic(t *testing.T) {
	a := MustAsset("1.0000 EOS")
	b := MustAsset("0.2500 EOS")
	sum, err := a.Add(b)
	if err != nil || sum.String() != "1.2500 EOS" {
		t.Errorf("add: %v %v", sum, err)
	}
	diff, err := a.Sub(b)
	if err != nil || diff.String() != "0.7500 EOS" {
		t.Errorf("sub: %v %v", diff, err)
	}
	other := MustAsset("1.0000 ABC")
	if _, err := a.Add(other); err == nil {
		t.Error("want symbol mismatch error")
	}
}

func TestAssetRoundTripQuick(t *testing.T) {
	f := func(amount int64) bool {
		a := EOS(amount % 1_000_000_000_000)
		back, err := ParseAsset(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
