package memo

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/eos"
	"repro/internal/static"
	"repro/internal/static/absint"
	"repro/internal/store"
	"repro/internal/symbolic"
	"repro/internal/wasm"
)

func key(shardByte byte, n int) [32]byte {
	var k [32]byte
	k[0] = shardByte
	k[1] = byte(n)
	k[2] = byte(n >> 8)
	return k
}

func TestShardedFIFOEviction(t *testing.T) {
	var s sharded[int]
	s.init(4)
	// Five inserts into one shard (same low nibble): the first key out.
	for i := 0; i < 5; i++ {
		s.put(key(0, i), i)
	}
	if _, ok := s.get(key(0, 0)); ok {
		t.Error("oldest entry survived past capacity")
	}
	for i := 1; i < 5; i++ {
		if v, ok := s.get(key(0, i)); !ok || v != i {
			t.Errorf("entry %d missing after eviction of older key", i)
		}
	}
	if got := s.evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Re-putting an existing key refreshes in place without eviction.
	s.put(key(0, 1), 100)
	if v, _ := s.get(key(0, 1)); v != 100 {
		t.Error("refresh did not update the value")
	}
	if got := s.evictions.Load(); got != 1 {
		t.Errorf("refresh evicted: evictions = %d, want 1", got)
	}
}

func TestShardedShardIndependence(t *testing.T) {
	var s sharded[int]
	s.init(1)
	// One entry per shard: no shard evicts another's key.
	for b := 0; b < numShards; b++ {
		s.put(key(byte(b), 0), b)
	}
	for b := 0; b < numShards; b++ {
		if v, ok := s.get(key(byte(b), 0)); !ok || v != b {
			t.Errorf("shard %d lost its entry", b)
		}
	}
	if got := s.evictions.Load(); got != 0 {
		t.Errorf("evictions = %d, want 0", got)
	}
}

func TestShardedCompaction(t *testing.T) {
	var s sharded[int]
	s.init(8)
	// Far more inserts than capacity on one shard: the order slice must
	// not grow without bound (compaction) and the live set stays at cap.
	for i := 0; i < 1000; i++ {
		s.put(key(3, i), i)
	}
	sh := &s.shards[3]
	if len(sh.m) != 8 {
		t.Errorf("live entries = %d, want 8", len(sh.m))
	}
	if len(sh.order)-sh.head > 8+64 {
		t.Errorf("order slice not compacted: len=%d head=%d", len(sh.order), sh.head)
	}
	// The newest 8 keys are exactly the survivors.
	for i := 992; i < 1000; i++ {
		if _, ok := s.get(key(3, i)); !ok {
			t.Errorf("newest key %d missing", i)
		}
	}
}

func TestShardedConcurrency(t *testing.T) {
	var s sharded[int]
	s.init(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.put(key(byte(i%numShards), i), i)
				s.get(key(byte((i+g)%numShards), i))
			}
		}(g)
	}
	wg.Wait() // -race is the assertion here
}

func TestSolverTierVerdicts(t *testing.T) {
	c := New()
	ctx := symbolic.NewCtx()
	x := ctx.Var("x", 32)
	sat := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(4, 32))}, 0)
	uns := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(0, 32)), ctx.Eq(x, ctx.Const(1, 32))}, 0)

	if _, ok := c.Lookup(sat); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store(sat, symbolic.VerdictOf(sat, symbolic.Model{"x": 4}, symbolic.Sat))
	c.Store(uns, symbolic.VerdictOf(uns, nil, symbolic.Unsat))
	c.Store(sat, symbolic.SolverVerdict{Result: symbolic.Unknown}) // must be dropped

	v, ok := c.Lookup(sat)
	if !ok || v.Result != symbolic.Sat || v.ModelFor(sat)["x"] != 4 {
		t.Fatalf("Sat replay wrong: ok=%v v=%+v", ok, v)
	}
	if v, ok := c.Lookup(uns); !ok || v.Result != symbolic.Unsat {
		t.Fatalf("Unsat replay wrong: ok=%v v=%+v", ok, v)
	}

	// A clause-permuted variant of the Unsat query misses the Ordered key
	// but hits the Sorted tier — and only for Unsat.
	perm := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(1, 32)), ctx.Eq(x, ctx.Const(0, 32))}, 0)
	if perm.Ordered == uns.Ordered {
		t.Fatal("test premise broken: permutation shares the Ordered key")
	}
	if v, ok := c.Lookup(perm); !ok || v.Result != symbolic.Unsat {
		t.Fatalf("Sorted-key Unsat replay failed: ok=%v v=%+v", ok, v)
	}

	st := c.Snapshot()
	if st.SolverHits != 2 || st.SolverUnsatHits != 1 {
		t.Errorf("counters: %+v", st)
	}
}

func TestUnknownNeverStored(t *testing.T) {
	c := New()
	ctx := symbolic.NewCtx()
	q := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(ctx.Var("x", 32), ctx.Const(9, 32))}, 0)
	c.Store(q, symbolic.SolverVerdict{Result: symbolic.Unknown})
	if _, ok := c.Lookup(q); ok {
		t.Fatal("Unknown verdict was cached")
	}
}

func testModuleBytes(t *testing.T) []byte {
	t.Helper()
	c, err := contractgen.Generate(contractgen.Spec{Class: contractgen.ClassFakeEOS, Vulnerable: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := wasm.Encode(c.Module)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestModuleTier(t *testing.T) {
	c := New()
	bin := testModuleBytes(t)
	calls := 0
	decode := func(b []byte) (*wasm.Module, error) {
		calls++
		return wasm.Decode(b)
	}
	m1, err := c.Module(bin, decode)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Module(bin, decode)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("decode ran %d times, want 1", calls)
	}
	if m1 != m2 {
		t.Error("cached module is not the same instance")
	}
	// Failed decodes are not cached.
	failCalls := 0
	fail := func(b []byte) (*wasm.Module, error) { failCalls++; return nil, errors.New("boom") }
	if _, err := c.Module([]byte("junk"), fail); err == nil {
		t.Fatal("decode error swallowed")
	}
	if _, err := c.Module([]byte("junk"), fail); err == nil {
		t.Fatal("decode error swallowed on second call")
	}
	if failCalls != 2 {
		t.Errorf("failed decode was cached: %d calls, want 2", failCalls)
	}
	st := c.Snapshot()
	if st.ModuleHits != 1 || st.ModuleMisses != 3 {
		t.Errorf("module counters: %+v", st)
	}
}

func TestStaticTier(t *testing.T) {
	c := New()
	bin := testModuleBytes(t)
	m, err := c.Module(bin, wasm.Decode)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	analyze := func(mod *wasm.Module) (*static.Report, error) {
		calls++
		return static.Analyze(mod)
	}
	r1, err := c.Static(m, analyze)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Static(m, analyze)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("analyze ran %d times, want 1", calls)
	}
	if r1 != r2 {
		t.Error("cached report is not the same instance")
	}
	// A second decode of the same bytes returns the cached module pointer,
	// so its report is shared too.
	m2, err := c.Module(bin, wasm.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Static(m2, analyze); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("analyze re-ran for a cached module: %d calls", calls)
	}
	// Failed analyses are cached as nil and replayed as (nil, nil).
	failCalls := 0
	failing := func(mod *wasm.Module) (*static.Report, error) { failCalls++; return nil, errors.New("nope") }
	cf := New()
	mf, err := cf.Module(bin, wasm.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Static(mf, failing); err == nil {
		t.Fatal("analyze error swallowed")
	}
	rep, err := cf.Static(mf, failing)
	if err != nil || rep != nil {
		t.Fatalf("cached failure not replayed as (nil, nil): rep=%v err=%v", rep, err)
	}
	if failCalls != 1 {
		t.Errorf("failed analysis re-ran: %d calls, want 1", failCalls)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if c.SolverMemo() != nil {
		t.Error("nil cache's SolverMemo is not a nil interface")
	}
	if st := c.Snapshot(); st != (Stats{}) {
		t.Errorf("nil snapshot: %+v", st)
	}
	ctx := symbolic.NewCtx()
	q := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(ctx.Var("x", 32), ctx.Const(9, 32))}, 0)
	if _, ok := c.Lookup(q); ok {
		t.Error("nil cache hit")
	}
	c.Store(q, symbolic.SolverVerdict{Result: symbolic.Sat})
	bin := testModuleBytes(t)
	if _, err := c.Module(bin, wasm.Decode); err != nil {
		t.Errorf("nil cache Module: %v", err)
	}
	m, _ := wasm.Decode(bin)
	if _, err := c.Static(m, static.Analyze); err != nil {
		t.Errorf("nil cache Static: %v", err)
	}
}

func TestParseModeForMode(t *testing.T) {
	for in, want := range map[string]Mode{"": ModeOff, "off": ModeOff, "on": ModeOn, "shared": ModeShared} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
	if ForMode(ModeOff) != nil {
		t.Error("ForMode(off) != nil")
	}
	a, b := ForMode(ModeOn), ForMode(ModeOn)
	if a == nil || a == b {
		t.Error("ForMode(on) must return fresh private caches")
	}
	s1, s2 := ForMode(ModeShared), ForMode(ModeShared)
	if s1 == nil || s1 != s2 {
		t.Error("ForMode(shared) must return the process singleton")
	}
}

func TestStatsSubAndString(t *testing.T) {
	a := Stats{SolverHits: 10, SolverMisses: 4, ModuleHits: 2, StaticMisses: 1}
	b := Stats{SolverHits: 4, SolverMisses: 1}
	d := a.Sub(b)
	if d.SolverHits != 6 || d.SolverMisses != 3 || d.ModuleHits != 2 || d.StaticMisses != 1 {
		t.Errorf("Sub: %+v", d)
	}
	if got := a.Hits(); got != 12 {
		t.Errorf("Hits = %d, want 12", got)
	}
	if got := a.Misses(); got != 5 {
		t.Errorf("Misses = %d, want 5", got)
	}
	if r := (Stats{}).HitRate(); r != 0 {
		t.Errorf("empty HitRate = %v, want 0", r)
	}
	if s := fmt.Sprint(a); s == "" {
		t.Error("empty String")
	}
}

func TestVerdictTier(t *testing.T) {
	c := New()
	bin := testModuleBytes(t)
	m, err := c.Module(bin, wasm.Decode)
	if err != nil {
		t.Fatal(err)
	}
	actions := []eos.Name{eos.MustName("sweep"), eos.MustName("reveal")}
	calls := 0
	analyze := func(mod *wasm.Module, acts []eos.Name) *absint.Report {
		calls++
		return absint.Analyze(mod, acts)
	}
	r1 := c.Verdict(m, actions, analyze)
	r2 := c.Verdict(m, actions, analyze)
	if calls != 1 {
		t.Errorf("analyze ran %d times, want 1", calls)
	}
	if r1 != r2 {
		t.Error("cached verdict report is not the same instance")
	}
	// A different action list is a different key: the report must not be
	// shared, since MissAuth quantifies over the ABI's actions.
	_ = c.Verdict(m, []eos.Name{eos.MustName("sweep")}, analyze)
	if calls != 2 {
		t.Errorf("distinct action list served from cache: %d calls, want 2", calls)
	}
	// Content-identical module decoded again shares the cached report.
	m2, err := c.Module(bin, wasm.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if r3 := c.Verdict(m2, actions, analyze); r3 != r1 {
		t.Error("content-identical module did not share the cached report")
	}
	if calls != 2 {
		t.Errorf("cached module re-analyzed: %d calls, want 2", calls)
	}
	st := c.Snapshot()
	if st.VerdictHits != 2 || st.VerdictMisses != 2 {
		t.Errorf("verdict counters hits=%d misses=%d, want 2/2", st.VerdictHits, st.VerdictMisses)
	}
	// Nil cache: pass-through.
	var nc *Cache
	if rep := nc.Verdict(m, actions, analyze); rep == nil {
		t.Error("nil cache Verdict returned nil report")
	}
	if calls != 3 {
		t.Errorf("nil cache did not call analyze: %d calls, want 3", calls)
	}
}

// --- disk tier --------------------------------------------------------------

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	d, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// entryPath mirrors the store's on-disk layout so tests can corrupt
// entries without exporting internals.
func entryPath(dir, tier string, k symbolic.CanonKey) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(dir, tier, h[:2], h+".v1")
}

func TestDiskTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	ctx := symbolic.NewCtx()
	x := ctx.Var("x", 32)
	sat := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(4, 32))}, 0)
	uns := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(0, 32)), ctx.Eq(x, ctx.Const(1, 32))}, 0)

	// First process: solve and write through.
	c1 := New()
	c1.AttachDisk(openTestStore(t, dir))
	want := symbolic.VerdictOf(sat, symbolic.Model{"x": 4}, symbolic.Sat)
	c1.Store(sat, want)
	c1.Store(uns, symbolic.VerdictOf(uns, nil, symbolic.Unsat))

	// Second process: cold memory, warm disk.
	c2 := New()
	c2.AttachDisk(openTestStore(t, dir))
	v, ok := c2.Lookup(sat)
	if !ok || v.Result != symbolic.Sat || v.ModelFor(sat)["x"] != 4 {
		t.Fatalf("disk Sat replay wrong: ok=%v v=%+v", ok, v)
	}
	if v, ok := c2.Lookup(uns); !ok || v.Result != symbolic.Unsat {
		t.Fatalf("disk Unsat replay wrong: ok=%v v=%+v", ok, v)
	}
	// A clause permutation misses the Ordered disk entry but hits the
	// Sorted unsat marker, exactly like the memory tiers.
	perm := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(1, 32)), ctx.Eq(x, ctx.Const(0, 32))}, 0)
	c3 := New()
	c3.AttachDisk(openTestStore(t, dir))
	if v, ok := c3.Lookup(perm); !ok || v.Result != symbolic.Unsat {
		t.Fatalf("disk Sorted-key Unsat replay failed: ok=%v v=%+v", ok, v)
	}
	if st := c3.Snapshot(); st.StoreHits != 1 {
		t.Errorf("StoreHits = %d, want 1; stats %+v", st.StoreHits, st)
	}
	// Promotion: the second lookup on c2 must be a memory hit, not disk.
	before := c2.Snapshot()
	if _, ok := c2.Lookup(sat); !ok {
		t.Fatal("promoted entry missing from memory tier")
	}
	after := c2.Snapshot()
	if after.StoreHits != before.StoreHits || after.SolverHits != before.SolverHits+1 {
		t.Errorf("promotion failed: before %+v after %+v", before, after)
	}
}

// TestDiskTierBitFlipNeverPoisons is the integrity satellite at the memo
// level: every single-bit flip of a stored verdict file must degrade to
// a counted miss — the cache must never replay a damaged verdict.
func TestDiskTierBitFlipNeverPoisons(t *testing.T) {
	dir := t.TempDir()
	ctx := symbolic.NewCtx()
	x := ctx.Var("x", 32)
	sat := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(x, ctx.Const(4, 32))}, 0)

	seed := New()
	seed.AttachDisk(openTestStore(t, dir))
	seed.Store(sat, symbolic.VerdictOf(sat, symbolic.Model{"x": 4}, symbolic.Sat))
	path := entryPath(dir, "solver", sat.Ordered)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flips := 0
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			corrupted := append([]byte{}, data...)
			corrupted[off] ^= 1 << bit
			if err := os.WriteFile(path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			c := New() // cold memory every time: the disk entry is the only source
			c.AttachDisk(openTestStore(t, dir))
			if v, ok := c.Lookup(sat); ok {
				t.Fatalf("bit %d of byte %d flipped and the cache still served %+v", bit, off, v)
			}
			st := c.Snapshot()
			if st.StoreCorrupt != 1 || st.SolverMisses != 1 {
				t.Fatalf("flip at byte %d bit %d: corrupt=%d misses=%d, want 1/1",
					off, bit, st.StoreCorrupt, st.SolverMisses)
			}
			flips++
		}
	}
	if flips != len(data)*8 {
		t.Fatalf("exercised %d flips, want %d", flips, len(data)*8)
	}
}

// TestDiskTierRejectsForeignPayload: a CRC-valid entry whose payload is
// not a verdict encoding (wrong writer, wrong tier semantics) is a miss,
// never a guessed verdict.
func TestDiskTierRejectsForeignPayload(t *testing.T) {
	dir := t.TempDir()
	ctx := symbolic.NewCtx()
	q := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(ctx.Var("x", 32), ctx.Const(9, 32))}, 0)

	d := openTestStore(t, dir)
	for _, payload := range [][]byte{
		{},                         // empty: no result byte
		{byte(symbolic.Unknown)},   // Unknown is never a valid stored verdict
		{99},                       // result byte out of range
		{byte(symbolic.Sat), 1, 2}, // ragged model bytes
	} {
		d.Put("solver", q.Ordered, payload)
		c := New()
		c.AttachDisk(d)
		if v, ok := c.Lookup(q); ok {
			t.Fatalf("foreign payload %v served verdict %+v", payload, v)
		}
		os.Remove(entryPath(dir, "solver", q.Ordered))
		// Reset the content-addressed skip-if-present index for the next shape.
		d = openTestStore(t, dir)
	}
}

func TestAttachDiskNilSafe(t *testing.T) {
	var c *Cache
	c.AttachDisk(nil) // must not panic
	if c.Disk() != nil {
		t.Fatal("nil cache reported a disk store")
	}
	c2 := New()
	c2.AttachDisk(nil)
	ctx := symbolic.NewCtx()
	q := symbolic.Canonicalize([]*symbolic.Expr{ctx.Eq(ctx.Var("x", 32), ctx.Const(9, 32))}, 0)
	c2.Store(q, symbolic.VerdictOf(q, symbolic.Model{"x": 9}, symbolic.Sat))
	if _, ok := c2.Lookup(q); !ok {
		t.Fatal("detached cache lost its memory tier")
	}
}

// TestSharedWithDisk: the per-store shared-cache registry. The plain
// Shared() cache must never gain a disk tier as a side effect — a
// Memo="shared" campaign with a StoreDir would otherwise leak its disk
// store into every later shared campaign (and a second StoreDir would
// swap the tier under running ones).
func TestSharedWithDisk(t *testing.T) {
	d1 := openTestStore(t, t.TempDir())
	d2 := openTestStore(t, t.TempDir())

	c1 := SharedWithDisk(d1)
	if c1 == Shared() {
		t.Fatal("SharedWithDisk returned the plain shared cache")
	}
	if c1.Disk() != d1 {
		t.Fatal("SharedWithDisk cache not bound to its store")
	}
	if Shared().Disk() != nil {
		t.Fatal("plain shared cache gained a disk tier")
	}
	if again := SharedWithDisk(d1); again != c1 {
		t.Fatal("SharedWithDisk is not stable per store")
	}
	c2 := SharedWithDisk(d2)
	if c2 == c1 {
		t.Fatal("two stores share one cache: a second StoreDir would swap the first's tier")
	}
	if c1.Disk() != d1 || c2.Disk() != d2 {
		t.Fatalf("disk bindings crossed: c1=%p c2=%p", c1.Disk(), c2.Disk())
	}
	if SharedWithDisk(nil) != Shared() {
		t.Fatal("SharedWithDisk(nil) must be the plain shared cache")
	}
}
