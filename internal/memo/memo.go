// Package memo is the cross-job memoization layer of the campaign engine:
// a concurrency-safe, sharded, content-addressed cache shared by every job
// in a batch (and, in shared mode, by every batch in the process). WASAI's
// concolic loop re-solves near-identical flipped-branch constraints many
// times — within one job every coverage increase resets the attempted set,
// and across jobs template-generated contracts repeat whole constraint
// families — and re-decodes/re-analyzes identical modules across jobs and
// across journal resume. The paper (§3.4.4) parallelizes constraint
// solving because it dominates end-to-end cost; this layer removes the
// duplicated fraction of that cost outright.
//
// Four tiers, all keyed by 32-byte content hashes:
//
//   - solver: canonicalized query -> Sat/Unsat verdict (+ canonical model),
//     consulted by symbolic.SolvePoolCtx before DPLL. Exact (Ordered-key)
//     hits replay verdict and model; permutation (Sorted-key) hits serve
//     Unsat only. See internal/symbolic/canon.go for why this preserves
//     byte-identical campaign digests.
//   - module: bytecode hash -> decoded+validated *wasm.Module.
//   - static: module content hash -> *static.Report (nil-report sentinel
//     for modules whose analysis failed, so failures are not re-analyzed).
//   - verdict: module content hash + ABI action list -> *absint.Report,
//     the abstract-interpretation three-valued verdicts campaign triage
//     consults (a pure function of module bytes and action names).
//
// Determinism contract: with any Mode, at any worker count, campaign
// FindingsDigest and StateDigest are byte-identical to a memo-off run.
// The cache can change only how much work is done, never its outcome:
// verdicts are semantic properties of the canonical query, modules and
// reports are pure functions of the bytes, Unknown is never cached, and
// fault-injected attempts bypass the cache entirely (enforced in
// symbolic.SolvePoolCtx and internal/campaign). Hit/miss/eviction
// counters are the one explicitly nondeterministic surface: concurrent
// workers can miss on the same key simultaneously, so counts may vary by
// ±worker-count across runs. They feed reports only, never digests.
//
// Eviction is per-shard FIFO with a fixed capacity: the oldest entry in
// the shard is dropped when a new key arrives at a full shard. Evicting
// never changes results — a dropped entry only means the work is done
// again on the next encounter.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/eos"
	"repro/internal/static"
	"repro/internal/static/absint"
	"repro/internal/store"
	"repro/internal/symbolic"
	"repro/internal/wasm"
)

// Mode selects the cache scope for a campaign.
type Mode string

// Cache scopes. Off disables memoization; On gives the campaign a fresh
// private cache; Shared uses one process-wide cache across campaigns
// (batches of batches, e.g. bench experiments or resumed runs).
const (
	ModeOff    Mode = "off"
	ModeOn     Mode = "on"
	ModeShared Mode = "shared"
)

// ParseMode parses a Mode ("" means off).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeOff:
		return ModeOff, nil
	case ModeOn:
		return ModeOn, nil
	case ModeShared:
		return ModeShared, nil
	default:
		//wasai:rawerr flag-validation error surfaced to the CLI, never reaches the failure classifier
		return ModeOff, fmt.Errorf("memo: unknown mode %q (want off, on or shared)", s)
	}
}

// ForMode returns the cache a campaign with this mode should use: nil for
// off, a fresh cache for on, the process-wide cache for shared.
func ForMode(m Mode) *Cache {
	switch m {
	case ModeOn:
		return New()
	case ModeShared:
		return Shared()
	default:
		return nil
	}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide cache (created on first use).
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New() })
	return shared
}

var (
	sharedDiskMu sync.Mutex
	//wasai:localcache registry of shared caches by disk store, not a data cache
	sharedDisk = map[*store.Store]*Cache{}
)

// SharedWithDisk returns the process-wide cache bound to the given disk
// store (created on first use, one cache per store). The plain Shared()
// cache never gains a disk tier: attaching one there would be a global
// side effect — later Memo="shared" campaigns without a StoreDir would
// silently keep using the disk, and a campaign with a different StoreDir
// would swap the shared cache's durable tier under everyone. Keying by
// store (store.OpenShared already dedupes handles by directory) keeps
// "shared" semantics among campaigns that share a directory and full
// isolation from everything else. A nil store is the plain Shared cache.
func SharedWithDisk(d *store.Store) *Cache {
	if d == nil {
		return Shared()
	}
	sharedDiskMu.Lock()
	defer sharedDiskMu.Unlock()
	c, ok := sharedDisk[d]
	if !ok {
		c = New()
		c.AttachDisk(d)
		sharedDisk[d] = c
	}
	return c
}

// Stats are cumulative cache counters. Counters are reporting-only: they
// never influence analysis results (see the package comment for why hit
// counts are not perfectly worker-count invariant).
type Stats struct {
	SolverHits      int64 // Ordered-key verdict replays
	SolverUnsatHits int64 // Sorted-key Unsat replays
	SolverMisses    int64
	SolverEvictions int64
	ModuleHits      int64
	ModuleMisses    int64
	StaticHits      int64
	StaticMisses    int64
	VerdictHits     int64
	VerdictMisses   int64
	// Disk-tier counters (zero unless a store is attached). StoreHits
	// counts lookups the memory tiers missed but the disk store answered;
	// StoreMisses and StoreCorrupt mirror the attached store's own
	// counters (corrupt reads degrade to misses, never to answers).
	StoreHits    int64
	StoreMisses  int64
	StoreCorrupt int64
}

// Sub returns s - prev, the delta between two snapshots (per-campaign
// accounting against a shared cache).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		SolverHits:      s.SolverHits - prev.SolverHits,
		SolverUnsatHits: s.SolverUnsatHits - prev.SolverUnsatHits,
		SolverMisses:    s.SolverMisses - prev.SolverMisses,
		SolverEvictions: s.SolverEvictions - prev.SolverEvictions,
		ModuleHits:      s.ModuleHits - prev.ModuleHits,
		ModuleMisses:    s.ModuleMisses - prev.ModuleMisses,
		StaticHits:      s.StaticHits - prev.StaticHits,
		StaticMisses:    s.StaticMisses - prev.StaticMisses,
		VerdictHits:     s.VerdictHits - prev.VerdictHits,
		VerdictMisses:   s.VerdictMisses - prev.VerdictMisses,
		StoreHits:       s.StoreHits - prev.StoreHits,
		StoreMisses:     s.StoreMisses - prev.StoreMisses,
		StoreCorrupt:    s.StoreCorrupt - prev.StoreCorrupt,
	}
}

// Hits sums hit counters across tiers (disk-store hits included: they
// saved the same recomputation a memory hit would have).
func (s Stats) Hits() int64 {
	return s.SolverHits + s.SolverUnsatHits + s.ModuleHits + s.StaticHits + s.VerdictHits + s.StoreHits
}

// Misses sums miss counters across tiers.
func (s Stats) Misses() int64 {
	return s.SolverMisses + s.ModuleMisses + s.StaticMisses + s.VerdictMisses
}

// HitRate is Hits / (Hits + Misses), 0 when the cache was never consulted.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses()
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// String renders the counters in the campaign-report style. The disk
// tier is appended only when it saw traffic, so store-less runs render
// exactly as before.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"solver hits=%d (unsat-perm %d) misses=%d evictions=%d | module hits=%d misses=%d | static hits=%d misses=%d | verdict hits=%d misses=%d | hit rate %.1f%%",
		s.SolverHits+s.SolverUnsatHits, s.SolverUnsatHits, s.SolverMisses, s.SolverEvictions,
		s.ModuleHits, s.ModuleMisses, s.StaticHits, s.StaticMisses, s.VerdictHits, s.VerdictMisses, 100*s.HitRate())
	if s.StoreHits != 0 || s.StoreMisses != 0 || s.StoreCorrupt != 0 {
		out += fmt.Sprintf(" | disk hits=%d misses=%d corrupt=%d", s.StoreHits, s.StoreMisses, s.StoreCorrupt)
	}
	return out
}

// DefaultShardCap bounds each of the 16 shards of each tier; the
// per-tier capacity is 16 × DefaultShardCap entries.
const DefaultShardCap = 4096

// Cache is the four-tier memoization store. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and nil-safe (a nil *Cache behaves as memoization-off), so call sites
// need no guards.
type Cache struct {
	solver   sharded[symbolic.SolverVerdict] // Ordered key -> verdict
	unsat    sharded[struct{}]               // Sorted key -> (Unsat)
	modules  sharded[*wasm.Module]           // bytecode hash -> module
	reports  sharded[*static.Report]         // bytecode hash -> report (nil = analyze failed)
	verdicts sharded[*absint.Report]         // bytecode+actions hash -> verdict report

	// moduleKeys remembers the content hash of modules this cache
	// decoded, so the static tier can key reports without re-encoding.
	//wasai:localcache side index into the cache's own tiers, not an independent cache
	moduleKeys sync.Map // *wasm.Module -> [32]byte

	// disk is the optional third tier (see AttachDisk): a durable,
	// cross-process store consulted after a memory miss on the solver and
	// unsat tiers, and written through on Store.
	disk atomic.Pointer[store.Store]

	solverHits      atomic.Int64
	solverUnsatHits atomic.Int64
	solverMisses    atomic.Int64
	moduleHits      atomic.Int64
	moduleMisses    atomic.Int64
	staticHits      atomic.Int64
	staticMisses    atomic.Int64
	verdictHits     atomic.Int64
	verdictMisses   atomic.Int64
	storeHits       atomic.Int64
}

// New returns an empty cache with default capacities.
func New() *Cache {
	c := &Cache{}
	c.solver.init(DefaultShardCap)
	c.unsat.init(DefaultShardCap)
	c.modules.init(DefaultShardCap / 16) // modules are big; keep fewer
	c.reports.init(DefaultShardCap / 16)
	c.verdicts.init(DefaultShardCap / 16)
	return c
}

// Disk-tier names inside the attached store. Only solver verdicts
// persist: they are small, binary-stable (see encodeVerdict) and are
// what dominates recomputation cost; module/static/verdict tiers hold
// heavyweight pointers whose decode cost is already amortized in memory.
const (
	diskTierSolver = "solver" // Ordered key -> encodeVerdict payload
	diskTierUnsat  = "unsat"  // Sorted key -> empty payload (Unsat marker)
)

// AttachDisk plugs a durable store under the solver tiers: memory misses
// consult it, and Sat/Unsat verdicts are written through so other
// processes (and future runs) start warm. Attaching nil detaches.
// Safe to call concurrently with lookups; pass the same *store.Store
// (e.g. store.OpenShared) to every cache sharing a directory.
func (c *Cache) AttachDisk(d *store.Store) {
	if c == nil {
		return
	}
	c.disk.Store(d)
}

// Disk returns the attached store, if any.
func (c *Cache) Disk() *store.Store {
	if c == nil {
		return nil
	}
	return c.disk.Load()
}

// SolverMemo adapts c to the solver pool's cache interface, returning a
// nil interface (not a typed-nil) when c is nil so the pool's nil check
// stays meaningful.
func (c *Cache) SolverMemo() symbolic.SolverMemo {
	if c == nil {
		return nil
	}
	return c
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	var ds store.Stats
	if d := c.disk.Load(); d != nil {
		ds = d.Stats()
	}
	return Stats{
		StoreHits:       c.storeHits.Load(),
		StoreMisses:     ds.Misses,
		StoreCorrupt:    ds.Corrupt,
		SolverHits:      c.solverHits.Load(),
		SolverUnsatHits: c.solverUnsatHits.Load(),
		SolverMisses:    c.solverMisses.Load(),
		SolverEvictions: c.solver.evictions.Load() + c.unsat.evictions.Load() + c.modules.evictions.Load() + c.reports.evictions.Load() + c.verdicts.evictions.Load(),
		ModuleHits:      c.moduleHits.Load(),
		ModuleMisses:    c.moduleMisses.Load(),
		StaticHits:      c.staticHits.Load(),
		StaticMisses:    c.staticMisses.Load(),
		VerdictHits:     c.verdictHits.Load(),
		VerdictMisses:   c.verdictMisses.Load(),
	}
}

// --- solver tier (implements symbolic.SolverMemo) ---------------------------

// Lookup serves a memoized verdict: exact (Ordered-key) hits replay
// verdict and model; Sorted-key hits replay Unsat only.
func (c *Cache) Lookup(q symbolic.Canon) (symbolic.SolverVerdict, bool) {
	if c == nil {
		return symbolic.SolverVerdict{}, false
	}
	if v, ok := c.solver.get(q.Ordered); ok {
		c.solverHits.Add(1)
		return v, true
	}
	if _, ok := c.unsat.get(q.Sorted); ok {
		c.solverUnsatHits.Add(1)
		return symbolic.SolverVerdict{Result: symbolic.Unsat}, true
	}
	if d := c.disk.Load(); d != nil {
		if raw, ok := d.Get(diskTierSolver, q.Ordered); ok {
			if v, ok := decodeVerdict(raw); ok {
				// Promote into the memory tiers so the next lookup skips disk.
				c.solver.put(q.Ordered, v)
				if v.Result == symbolic.Unsat {
					c.unsat.put(q.Sorted, struct{}{})
				}
				c.storeHits.Add(1)
				return v, true
			}
			// CRC-valid but semantically undecodable payload (foreign
			// writer): fall through to a plain miss; never guess a verdict.
		}
		if _, ok := d.Get(diskTierUnsat, q.Sorted); ok {
			c.unsat.put(q.Sorted, struct{}{})
			c.storeHits.Add(1)
			return symbolic.SolverVerdict{Result: symbolic.Unsat}, true
		}
	}
	c.solverMisses.Add(1)
	return symbolic.SolverVerdict{}, false
}

// Store records a Sat or Unsat verdict; Unknown is dropped (it reflects
// the budget and cancellation timing, not the query).
func (c *Cache) Store(q symbolic.Canon, v symbolic.SolverVerdict) {
	if c == nil {
		return
	}
	d := c.disk.Load()
	switch v.Result {
	case symbolic.Sat:
		c.solver.put(q.Ordered, v)
		d.Put(diskTierSolver, q.Ordered, encodeVerdict(v))
	case symbolic.Unsat:
		c.solver.put(q.Ordered, v)
		c.unsat.put(q.Sorted, struct{}{})
		d.Put(diskTierSolver, q.Ordered, encodeVerdict(v))
		d.Put(diskTierUnsat, q.Sorted, nil)
	}
}

// encodeVerdict frames a solver verdict for the disk tier: one result
// byte, then each model value as 8 little-endian bytes. Binary, not
// JSON: model values are full-range uint64s and must round-trip exactly
// (digest identity) — JSON numbers would lose precision past 2^53.
func encodeVerdict(v symbolic.SolverVerdict) []byte {
	out := make([]byte, 1+8*len(v.Vals))
	out[0] = byte(v.Result)
	for i, val := range v.Vals {
		binary.LittleEndian.PutUint64(out[1+8*i:], val)
	}
	return out
}

// decodeVerdict is the inverse; it rejects shapes encodeVerdict cannot
// produce (Unknown results, ragged lengths) so a foreign or stale
// payload degrades to a miss.
func decodeVerdict(raw []byte) (symbolic.SolverVerdict, bool) {
	if len(raw) < 1 || (len(raw)-1)%8 != 0 {
		return symbolic.SolverVerdict{}, false
	}
	res := symbolic.Result(raw[0])
	if res != symbolic.Sat && res != symbolic.Unsat {
		return symbolic.SolverVerdict{}, false
	}
	v := symbolic.SolverVerdict{Result: res}
	if n := (len(raw) - 1) / 8; n > 0 {
		v.Vals = make([]uint64, n)
		for i := range v.Vals {
			v.Vals[i] = binary.LittleEndian.Uint64(raw[1+8*i:])
		}
	}
	return v, true
}

// --- module tier ------------------------------------------------------------

// Module returns the decoded module for bin, calling decode on first
// encounter of these bytes. Only successful decodes are cached; decode
// must be pure (wasm.Decode+Validate is).
func (c *Cache) Module(bin []byte, decode func([]byte) (*wasm.Module, error)) (*wasm.Module, error) {
	if c == nil {
		return decode(bin)
	}
	key := sha256.Sum256(bin)
	if m, ok := c.modules.get(key); ok {
		c.moduleHits.Add(1)
		return m, nil
	}
	c.moduleMisses.Add(1)
	m, err := decode(bin)
	if err != nil {
		return nil, err
	}
	c.modules.put(key, m)
	c.moduleKeys.Store(m, key)
	return m, nil
}

// --- static tier ------------------------------------------------------------

// Static returns the static report for m, calling analyze on first
// encounter of the module's content. A failed analysis is cached as a
// nil report and replayed as (nil, nil) — callers already treat a nil
// report as "no static information".
func (c *Cache) Static(m *wasm.Module, analyze func(*wasm.Module) (*static.Report, error)) (*static.Report, error) {
	if c == nil {
		rep, err := analyze(m)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	key, ok := c.moduleKey(m)
	if !ok {
		// Module content not hashable (encode failed): analyze uncached.
		rep, err := analyze(m)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	if rep, ok := c.reports.get(key); ok {
		c.staticHits.Add(1)
		return rep, nil
	}
	c.staticMisses.Add(1)
	rep, err := analyze(m)
	if err != nil {
		c.reports.put(key, nil)
		return nil, err
	}
	c.reports.put(key, rep)
	return rep, nil
}

// --- verdict tier -----------------------------------------------------------

// Verdict returns the abstract-interpretation verdict report for m under
// the given ABI action list, calling analyze on first encounter of the
// (module content, actions) pair. absint.Analyze is a pure deterministic
// function of exactly those inputs (the absint determinism test pins it),
// so replaying a cached report is indistinguishable from re-analyzing.
func (c *Cache) Verdict(m *wasm.Module, actions []eos.Name, analyze func(*wasm.Module, []eos.Name) *absint.Report) *absint.Report {
	if c == nil {
		return analyze(m, actions)
	}
	mkey, ok := c.moduleKey(m)
	if !ok {
		return analyze(m, actions)
	}
	h := sha256.New()
	h.Write(mkey[:])
	var buf [8]byte
	for _, a := range actions {
		binary.LittleEndian.PutUint64(buf[:], uint64(a))
		h.Write(buf[:])
	}
	var key [32]byte
	h.Sum(key[:0])
	if rep, ok := c.verdicts.get(key); ok {
		c.verdictHits.Add(1)
		return rep
	}
	c.verdictMisses.Add(1)
	rep := analyze(m, actions)
	c.verdicts.put(key, rep)
	return rep
}

func (c *Cache) moduleKey(m *wasm.Module) ([32]byte, bool) {
	if k, ok := c.moduleKeys.Load(m); ok {
		return k.([32]byte), true
	}
	bin, err := wasm.Encode(m)
	if err != nil {
		return [32]byte{}, false
	}
	key := sha256.Sum256(bin)
	c.moduleKeys.Store(m, key)
	return key, true
}

// --- sharded store ----------------------------------------------------------

const numShards = 16

// sharded is a 16-way sharded map keyed by 32-byte content hashes with
// per-shard FIFO eviction. Sharding keeps lock hold times short under
// the solver pool's concurrency; the shard index is the key's first
// byte's low nibble (uniform, since keys are SHA-256 output).
type sharded[V any] struct {
	shards    [numShards]shard[V]
	capacity  int
	evictions atomic.Int64
}

type shard[V any] struct {
	mu sync.Mutex
	//wasai:localcache shard storage of internal/memo itself
	m     map[[32]byte]V
	order [][32]byte // insertion order; order[head:] are live
	head  int
}

func (s *sharded[V]) init(capPerShard int) {
	s.capacity = capPerShard
	for i := range s.shards {
		s.shards[i].m = map[[32]byte]V{}
	}
}

func (s *sharded[V]) get(key [32]byte) (V, bool) {
	sh := &s.shards[key[0]&(numShards-1)]
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

func (s *sharded[V]) put(key [32]byte, v V) {
	sh := &s.shards[key[0]&(numShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		// Refresh in place, keeping the FIFO position: concurrent misses
		// on one key store equivalent values, so first-in wins is fine.
		sh.m[key] = v
		return
	}
	if len(sh.m) >= s.capacity {
		delete(sh.m, sh.order[sh.head])
		sh.head++
		s.evictions.Add(1)
		// Compact the consumed prefix once it dominates the slice.
		if sh.head > 64 && sh.head*2 > len(sh.order) {
			sh.order = append(sh.order[:0], sh.order[sh.head:]...)
			sh.head = 0
		}
	}
	sh.m[key] = v
	sh.order = append(sh.order, key)
}
