package leb128_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/contractgen"
	"repro/internal/wasm"
)

// varintCorpus builds the checked-in seed corpora for FuzzUint and FuzzInt:
// windows cut from a deterministic contractgen binary, which is dense in
// real varints (section sizes, indices, i32/i64 immediates) at every
// alignment the decoder sees in practice.
func varintCorpus(tb testing.TB) map[string]map[string][]byte {
	tb.Helper()
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: true, Seed: 42,
	})
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	bin, err := wasm.Encode(c.Module)
	if err != nil {
		tb.Fatalf("encode: %v", err)
	}
	window := func(off, n int) []byte {
		if off+n > len(bin) {
			off = len(bin) - n
		}
		return bin[off : off+n]
	}
	return map[string]map[string][]byte{
		"FuzzUint": {
			"contractgen-sections": window(8, 32),          // section ids + sizes
			"contractgen-mid":      window(len(bin)/2, 32), // code section interior
			"contractgen-tail":     window(len(bin)-32, 32),
		},
		"FuzzInt": {
			"contractgen-code": window(len(bin)/3, 32), // const immediates
			"contractgen-mid":  window(2*len(bin)/3, 32),
		},
	}
}

// TestVarintSeedCorpus keeps the checked-in corpora in sync with the
// generator. Regenerate with:
//
//	UPDATE_FUZZ_CORPUS=1 go test -run TestVarintSeedCorpus ./internal/leb128/
func TestVarintSeedCorpus(t *testing.T) {
	update := os.Getenv("UPDATE_FUZZ_CORPUS") != ""
	for target, entries := range varintCorpus(t) {
		dir := filepath.Join("testdata", "fuzz", target)
		if update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for name, data := range entries {
			path := filepath.Join(dir, name)
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if update {
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("seed corpus entry missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", err)
			}
			if string(got) != want {
				t.Errorf("seed corpus entry %s/%s is stale (regenerate with UPDATE_FUZZ_CORPUS=1)", target, name)
			}
		}
	}
}
