// Package leb128 implements the variable-length integer encoding used by the
// WebAssembly binary format (unsigned and signed LEB128, up to 64 bits).
//
// The decoder is strict about the limits imposed by the Wasm specification:
// a 32-bit value may occupy at most 5 bytes and a 64-bit value at most 10,
// and unused bits in the final byte must be a proper sign/zero extension.
package leb128

import (
	"errors"
	"fmt"
	"io"
)

// Errors returned by the decoding functions.
var (
	// ErrOverflow reports a varint that does not fit the requested width.
	ErrOverflow = errors.New("leb128: value overflows integer width")
	// ErrTooLong reports a varint that uses more bytes than the Wasm spec
	// allows for the requested width.
	ErrTooLong = errors.New("leb128: encoding exceeds maximum byte length")
)

// maxBytes returns the maximum encoded length for an n-bit integer.
func maxBytes(bits uint) int { return int((bits + 6) / 7) }

// AppendUint appends the unsigned LEB128 encoding of v to dst and returns
// the extended slice.
func AppendUint(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
			continue
		}
		return append(dst, b)
	}
}

// AppendInt appends the signed LEB128 encoding of v to dst and returns the
// extended slice.
func AppendInt(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7 // arithmetic shift
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// Uint decodes an unsigned LEB128 integer of at most bits width from p.
// It returns the value and the number of bytes consumed.
func Uint(p []byte, bits uint) (uint64, int, error) {
	var (
		result uint64
		shift  uint
	)
	limit := maxBytes(bits)
	for i := 0; i < len(p); i++ {
		if i >= limit {
			return 0, 0, ErrTooLong
		}
		b := p[i]
		if shift+7 >= bits {
			// Final byte: the bits beyond the width must be zero.
			extra := b &^ byte(1<<(bits-shift)-1) &^ 0x80
			if extra != 0 {
				return 0, 0, ErrOverflow
			}
		}
		result |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return result, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Int decodes a signed LEB128 integer of at most bits width from p.
// It returns the value and the number of bytes consumed.
func Int(p []byte, bits uint) (int64, int, error) {
	var (
		result int64
		shift  uint
	)
	limit := maxBytes(bits)
	for i := 0; i < len(p); i++ {
		if i >= limit {
			return 0, 0, ErrTooLong
		}
		b := p[i]
		if b&0x80 == 0 && shift+7 > bits {
			// Final byte with fewer than 7 significant bits left: the
			// unused bits must be a proper sign extension.
			k := bits - shift // 1..6 value bits in this byte
			sign := (b >> (k - 1)) & 1
			upper := b &^ byte(1<<k-1) & 0x7f
			if (sign == 0 && upper != 0) || (sign == 1 && upper != byte(0x7f)&^byte(1<<k-1)) {
				return 0, 0, ErrOverflow
			}
		}
		result |= int64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				result |= -1 << shift
			}
			return result, i + 1, nil
		}
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Uint32 decodes a 32-bit unsigned varint from p.
func Uint32(p []byte) (uint32, int, error) {
	v, n, err := Uint(p, 32)
	return uint32(v), n, err
}

// Uint64 decodes a 64-bit unsigned varint from p.
func Uint64(p []byte) (uint64, int, error) { return Uint(p, 64) }

// Int32 decodes a 32-bit signed varint from p.
func Int32(p []byte) (int32, int, error) {
	v, n, err := Int(p, 32)
	return int32(v), n, err
}

// Int64 decodes a 64-bit signed varint from p.
func Int64(p []byte) (int64, int, error) { return Int(p, 64) }

// Reader decodes LEB128 values from an io.ByteReader.
type Reader struct {
	r io.ByteReader
}

// NewReader returns a Reader that consumes bytes from r.
func NewReader(r io.ByteReader) *Reader { return &Reader{r: r} }

// Uint reads an unsigned varint of at most bits width.
func (r *Reader) Uint(bits uint) (uint64, error) {
	var (
		result uint64
		shift  uint
		count  int
	)
	limit := maxBytes(bits)
	for {
		if count >= limit {
			return 0, ErrTooLong
		}
		b, err := r.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("leb128: read byte %d: %w", count, err)
		}
		count++
		if shift+7 >= bits {
			// Mirror Uint's strictness: unused bits of the final byte
			// must be zero.
			if extra := b &^ byte(1<<(bits-shift)-1) &^ 0x80; extra != 0 {
				return 0, ErrOverflow
			}
		}
		result |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return result, nil
		}
		shift += 7
	}
}
