package leb128

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 624485, math.MaxUint32, math.MaxUint64}
	for _, v := range cases {
		buf := AppendUint(nil, v)
		got, n, err := Uint64(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("round trip %d: got %d (consumed %d of %d)", v, got, n, len(buf))
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, 64, -64, -65, 127, -128, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		buf := AppendInt(nil, v)
		got, n, err := Int64(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("round trip %d: got %d (consumed %d of %d)", v, got, n, len(buf))
		}
	}
}

func TestUintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		got, _, err := Uint64(AppendUint(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		got, _, err := Int64(AppendInt(nil, v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTripQuick(t *testing.T) {
	f := func(v int32) bool {
		got, _, err := Int32(AppendInt(nil, int64(v)))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintTruncated(t *testing.T) {
	if _, _, err := Uint64([]byte{0x80}); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("want unexpected EOF, got %v", err)
	}
	if _, _, err := Uint64(nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("want unexpected EOF on empty, got %v", err)
	}
}

func TestUintTooLong(t *testing.T) {
	// 6 continuation bytes overflow a 32-bit varint.
	_, _, err := Uint32([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	if !errors.Is(err, ErrTooLong) {
		t.Errorf("want ErrTooLong, got %v", err)
	}
}

func TestUint32OverflowBits(t *testing.T) {
	// Fifth byte carries bits beyond 32.
	_, _, err := Uint32([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	if !errors.Is(err, ErrOverflow) {
		t.Errorf("want ErrOverflow, got %v", err)
	}
	// Canonical max u32 is fine.
	v, _, err := Uint32([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	if err != nil || v != math.MaxUint32 {
		t.Errorf("max u32: %d, %v", v, err)
	}
}

func TestEncodingLength(t *testing.T) {
	// Spot-check canonical lengths.
	tests := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3},
	}
	for _, tt := range tests {
		if got := len(AppendUint(nil, tt.v)); got != tt.want {
			t.Errorf("len(encode %d) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestReader(t *testing.T) {
	var buf []byte
	values := []uint64{0, 1, 300, 1 << 40}
	for _, v := range values {
		buf = AppendUint(buf, v)
	}
	r := NewReader(bytes.NewReader(buf))
	for _, want := range values {
		got, err := r.Uint(64)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	}
	if _, err := r.Uint(64); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("want EOF error at end, got %v", err)
	}
}
