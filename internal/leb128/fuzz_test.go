package leb128_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/leb128"
)

// FuzzUint cross-checks the two unsigned decoders (slice and Reader) and
// the encode/decode round trip at both Wasm widths. Seed corpus: edge
// encodings inline plus contractgen-built contract binaries checked in
// under testdata/fuzz (varint-dense real input).
func FuzzUint(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xe5, 0x8e, 0x26})                                           // 624485, the spec's example
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x10})                               // 2^32, overflows 32-bit
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // max uint64
	f.Add([]byte{0x80, 0x00})                                                 // non-canonical zero
	f.Add([]byte{0x80})                                                       // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, bits := range []uint{32, 64} {
			v, n, err := leb128.Uint(data, bits)
			rv, rerr := leb128.NewReader(bytes.NewReader(data)).Uint(bits)
			if err != nil {
				if rerr == nil {
					t.Fatalf("bits=%d: slice rejected (%v) but Reader accepted %d", bits, err, rv)
				}
				continue
			}
			if rerr != nil {
				t.Fatalf("bits=%d: slice accepted %d but Reader rejected: %v", bits, v, rerr)
			}
			if rv != v {
				t.Fatalf("bits=%d: slice decoded %d, Reader decoded %d", bits, v, rv)
			}
			if bits < 64 && v>>bits != 0 {
				t.Fatalf("bits=%d: decoded %d does not fit the width", bits, v)
			}
			// Round trip: the canonical re-encoding decodes to the same
			// value and is never longer than what was consumed.
			enc := leb128.AppendUint(nil, v)
			v2, n2, err := leb128.Uint(enc, bits)
			if err != nil || v2 != v {
				t.Fatalf("bits=%d: canonical %x of %d re-decodes to %d, %v", bits, enc, v, v2, err)
			}
			if n2 != len(enc) || n2 > n {
				t.Fatalf("bits=%d: canonical length %d vs consumed %d", bits, n2, n)
			}
		}
	})
}

// FuzzInt is FuzzUint for the signed decoder: accepted values must fit the
// width (strict sign extension) and survive the round trip.
func FuzzInt(f *testing.F) {
	f.Add([]byte{0x7f})                                                       // -1
	f.Add([]byte{0xc0, 0xbb, 0x78})                                           // -123456, the spec's example
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x78})                               // min int32
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x08})                               // bad sign extension
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x00}) // max int64
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, bits := range []uint{32, 64} {
			v, n, err := leb128.Int(data, bits)
			if err != nil {
				if !errors.Is(err, leb128.ErrOverflow) && !errors.Is(err, leb128.ErrTooLong) &&
					!errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("bits=%d: unexpected error class: %v", bits, err)
				}
				continue
			}
			if bits < 64 {
				if min, max := -(int64(1) << (bits - 1)), int64(1)<<(bits-1)-1; v < min || v > max {
					t.Fatalf("bits=%d: decoded %d does not fit the width", bits, v)
				}
			}
			enc := leb128.AppendInt(nil, v)
			v2, n2, err := leb128.Int(enc, bits)
			if err != nil || v2 != v {
				t.Fatalf("bits=%d: canonical %x of %d re-decodes to %d, %v", bits, enc, v, v2, err)
			}
			if n2 != len(enc) || n2 > n {
				t.Fatalf("bits=%d: canonical length %d vs consumed %d", bits, n2, n)
			}
		}
	})
}
