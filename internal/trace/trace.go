// Package trace defines the runtime-trace event model of WASAI.
//
// A trace is the sequence of Wasm instructions a contract actually executed,
// together with the concrete operands the symbolic backend cannot derive
// statically: memory addresses, branch conditions, indirect-call table
// indices, and host/library-call returns (paper §3.1, §3.3.1). Events are
// emitted by the instrumentation hooks injected into contract bytecode and
// collected per contract, so traces from auxiliary contracts (for example
// eosio.token) never pollute the analysis of the fuzzing target.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/eos"
	"repro/internal/wasm"
)

// HookKind identifies which low-level hook produced an event. The five
// function-invocation hooks follow Table 1 of the paper.
type HookKind byte

// Hook kinds.
const (
	HookInstr     HookKind = iota + 1 // generic instruction site
	HookCond                          // br_if / if: condition operand
	HookBrTable                       // br_table: index operand
	HookMem                           // load/store: concrete address operand
	HookCallPre                       // before an invocation: callee (or table index)
	HookCall                          // the invocation itself (resolved callee)
	HookCallPost                      // after the invocation: returned value
	HookFuncBegin                     // begin of the invoked function's body
	HookFuncEnd                       // end of the invoked function's body
	HookCmp                           // i64.eq / i64.ne: one event per operand (a then b)
	HookParam                         // function parameter value at function_begin
)

// String names the hook kind.
func (k HookKind) String() string {
	switch k {
	case HookInstr:
		return "instr"
	case HookCond:
		return "cond"
	case HookBrTable:
		return "br_table"
	case HookMem:
		return "mem"
	case HookCallPre:
		return "call_pre"
	case HookCall:
		return "call"
	case HookCallPost:
		return "call_post"
	case HookFuncBegin:
		return "function_begin"
	case HookFuncEnd:
		return "function_end"
	case HookCmp:
		return "cmp"
	case HookParam:
		return "param"
	default:
		return fmt.Sprintf("hook(%d)", byte(k))
	}
}

// Event is one trace record τ(i, p⃗): the executed instruction i (located by
// function index and pc in the instrumented module) and the captured
// operands p⃗.
type Event struct {
	Kind HookKind
	Func uint32      // function index in the instrumented module
	PC   int         // instruction index within the function body
	Op   wasm.Opcode // static opcode at the site (zero for begin/end labels)
	// Operand carries the captured runtime value: branch condition,
	// concrete memory address, table index, callee function index, or a
	// returned value, depending on Kind.
	Operand uint64
}

// Trace is the per-action event sequence of one contract.
type Trace struct {
	Contract eos.Name
	Action   eos.Name
	Events   []Event
}

// Collector accumulates traces during transaction execution and exports
// them when an action finishes (the paper's finalize_trace point).
type Collector struct {
	current  []Event
	finished []Trace
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends an event to the in-flight action trace.
func (c *Collector) Emit(ev Event) { c.current = append(c.current, ev) }

// Finalize closes the in-flight trace, tagging it with the contract and
// action, and makes it available via Traces. Mirrors
// apply_context::finalize_trace in Nodeos.
func (c *Collector) Finalize(contract, action eos.Name) {
	if len(c.current) == 0 {
		return
	}
	c.finished = append(c.finished, Trace{Contract: contract, Action: action, Events: c.current})
	c.current = nil
}

// Discard drops the in-flight trace (used when an action reverts before
// producing a complete trace is NOT desired — WASAI analyzes reverted
// executions too, so Discard is only for collector reuse).
func (c *Collector) Discard() { c.current = nil }

// Traces returns the finished traces collected so far.
func (c *Collector) Traces() []Trace { return c.finished }

// Reset clears all state.
func (c *Collector) Reset() {
	c.current = nil
	c.finished = nil
}

// TakeTraces returns the finished traces and clears them.
func (c *Collector) TakeTraces() []Trace {
	t := c.finished
	c.finished = nil
	return t
}

// --- Offline files ----------------------------------------------------------
//
// The paper redirects traces to offline files once an EOSVM thread finishes.
// The binary layout is a simple length-prefixed record stream.

const fileMagic = uint32(0x57415341) // "WASA"

// Write serializes traces to w in the offline-file format.
func Write(w io.Writer, traces []Trace) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(traces)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, tr := range traces {
		var th [20]byte
		binary.LittleEndian.PutUint64(th[0:], uint64(tr.Contract))
		binary.LittleEndian.PutUint64(th[8:], uint64(tr.Action))
		binary.LittleEndian.PutUint32(th[16:], uint32(len(tr.Events)))
		if _, err := bw.Write(th[:]); err != nil {
			return fmt.Errorf("trace: write trace header: %w", err)
		}
		var rec [22]byte
		for _, ev := range tr.Events {
			rec[0] = byte(ev.Kind)
			rec[1] = byte(ev.Op)
			binary.LittleEndian.PutUint32(rec[2:], ev.Func)
			binary.LittleEndian.PutUint32(rec[6:], uint32(ev.PC))
			binary.LittleEndian.PutUint64(rec[10:], ev.Operand)
			binary.LittleEndian.PutUint32(rec[18:], 0) // reserved
			if _, err := bw.Write(rec[:]); err != nil {
				return fmt.Errorf("trace: write event: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes traces from the offline-file format.
func Read(r io.Reader) ([]Trace, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	traces := make([]Trace, 0, n)
	for i := uint32(0); i < n; i++ {
		var th [20]byte
		if _, err := io.ReadFull(br, th[:]); err != nil {
			return nil, fmt.Errorf("trace: read trace %d header: %w", i, err)
		}
		tr := Trace{
			Contract: eos.Name(binary.LittleEndian.Uint64(th[0:])),
			Action:   eos.Name(binary.LittleEndian.Uint64(th[8:])),
		}
		ne := binary.LittleEndian.Uint32(th[16:])
		tr.Events = make([]Event, 0, ne)
		var rec [22]byte
		for j := uint32(0); j < ne; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: read event %d/%d: %w", i, j, err)
			}
			tr.Events = append(tr.Events, Event{
				Kind:    HookKind(rec[0]),
				Op:      wasm.Opcode(rec[1]),
				Func:    binary.LittleEndian.Uint32(rec[2:]),
				PC:      int(binary.LittleEndian.Uint32(rec[6:])),
				Operand: binary.LittleEndian.Uint64(rec[10:]),
			})
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// CalledFuncs returns the ordered list of resolved callee function indices
// (the paper's id⃗ function-call chain) observed in the trace.
func (t *Trace) CalledFuncs() []uint32 {
	var ids []uint32
	for _, ev := range t.Events {
		if ev.Kind == HookCall {
			ids = append(ids, uint32(ev.Operand))
		}
	}
	return ids
}

// Branches returns the distinct (site, direction) pairs exercised — the
// branch-coverage unit of RQ1.
func (t *Trace) Branches() map[BranchKey]struct{} {
	out := make(map[BranchKey]struct{})
	for _, ev := range t.Events {
		switch ev.Kind {
		case HookCond:
			dir := uint8(0)
			if ev.Operand != 0 {
				dir = 1
			}
			out[BranchKey{Func: ev.Func, PC: ev.PC, Dir: dir}] = struct{}{}
		case HookBrTable:
			// Each distinct selected arm counts as a distinct branch.
			out[BranchKey{Func: ev.Func, PC: ev.PC, Dir: uint8(ev.Operand % 251)}] = struct{}{}
		}
	}
	return out
}

// BranchKey identifies one conditional-branch direction at one site.
type BranchKey struct {
	Func uint32
	PC   int
	Dir  uint8
}
