package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/eos"
	"repro/internal/wasm"
)

func sampleTraces() []Trace {
	return []Trace{
		{
			Contract: eos.MustName("victim"),
			Action:   eos.ActionTransfer,
			Events: []Event{
				{Kind: HookFuncBegin, Func: 30},
				{Kind: HookParam, Func: 30, Operand: 42},
				{Kind: HookCond, Func: 30, PC: 5, Op: wasm.OpBrIf, Operand: 1},
				{Kind: HookMem, Func: 30, PC: 9, Op: wasm.OpI64Load, Operand: 1040},
				{Kind: HookCall, Func: 30, PC: 12, Op: wasm.OpCall, Operand: 3},
				{Kind: HookCallPost, Func: 30, PC: 12, Operand: 7},
				{Kind: HookFuncEnd, Func: 30},
			},
		},
		{
			Contract: eos.MustName("other"),
			Action:   eos.MustName("reveal"),
			Events:   []Event{{Kind: HookBrTable, Func: 8, PC: 2, Operand: 3}},
		},
	}
}

func TestOfflineFileRoundTrip(t *testing.T) {
	traces := sampleTraces()
	var buf bytes.Buffer
	if err := Write(&buf, traces); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(traces, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", traces, back)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("want error for bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty input")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := Write(&buf, sampleTraces()); err != nil {
		t.Fatal(err)
	}
	p := buf.Bytes()
	if _, err := Read(bytes.NewReader(p[:len(p)-5])); err == nil {
		t.Error("want error for truncated file")
	}
}

func TestCollectorFinalize(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: HookInstr, Func: 1})
	c.Emit(Event{Kind: HookInstr, Func: 1, PC: 1})
	c.Finalize(eos.MustName("a"), eos.ActionTransfer)
	c.Emit(Event{Kind: HookInstr, Func: 2})
	c.Finalize(eos.MustName("b"), eos.MustName("reveal"))
	// Empty finalize is a no-op.
	c.Finalize(eos.MustName("c"), eos.ActionTransfer)

	got := c.Traces()
	if len(got) != 2 {
		t.Fatalf("traces = %d, want 2", len(got))
	}
	if got[0].Contract != eos.MustName("a") || len(got[0].Events) != 2 {
		t.Errorf("first trace: %+v", got[0])
	}
	taken := c.TakeTraces()
	if len(taken) != 2 || len(c.Traces()) != 0 {
		t.Error("TakeTraces did not drain")
	}
}

func TestCalledFuncs(t *testing.T) {
	tr := sampleTraces()[0]
	ids := tr.CalledFuncs()
	if len(ids) != 1 || ids[0] != 3 {
		t.Errorf("CalledFuncs = %v", ids)
	}
}

func TestBranches(t *testing.T) {
	tr := Trace{Events: []Event{
		{Kind: HookCond, Func: 1, PC: 5, Operand: 1},
		{Kind: HookCond, Func: 1, PC: 5, Operand: 1}, // duplicate direction
		{Kind: HookCond, Func: 1, PC: 5, Operand: 0}, // other direction
		{Kind: HookBrTable, Func: 1, PC: 9, Operand: 2},
		{Kind: HookMem, Func: 1, PC: 11, Operand: 64}, // not a branch
	}}
	b := tr.Branches()
	if len(b) != 3 {
		t.Errorf("distinct branches = %d, want 3", len(b))
	}
	if _, ok := b[BranchKey{Func: 1, PC: 5, Dir: 1}]; !ok {
		t.Error("taken direction missing")
	}
	if _, ok := b[BranchKey{Func: 1, PC: 5, Dir: 0}]; !ok {
		t.Error("untaken direction missing")
	}
}

func TestHookKindStrings(t *testing.T) {
	kinds := []HookKind{
		HookInstr, HookCond, HookBrTable, HookMem, HookCallPre, HookCall,
		HookCallPost, HookFuncBegin, HookFuncEnd, HookCmp, HookParam,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
