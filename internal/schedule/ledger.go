package schedule

import "sort"

// JobPhase is one job's phase-1 summary as reported to the campaign fuel
// ledger: how much of its budget it left unspent (saturated jobs stop
// early), and the signals the ledger ranks recipients by. Everything here
// is derived from (seed, observed coverage) — never from timing — so the
// reallocation is a pure function and identical at any worker count.
type JobPhase struct {
	// ID is the job's campaign ID (orders ties).
	ID int
	// Executed distinguishes jobs that actually fuzzed from replayed /
	// triage-skipped / verdict-skipped / failed jobs, which neither donate
	// nor receive fuel.
	Executed bool
	// Saturated marks a job that stopped at its saturation window.
	Saturated bool
	// FuelUnspent is the iteration budget the job handed back.
	FuelUnspent int
	// StaticScore is the triage prioritisation score (primary rank key —
	// same ordering the campaign already uses for job scheduling).
	StaticScore int
	// Coverage and Iterations give the observed coverage rate
	// (Coverage/Iterations, compared by integer cross-multiplication).
	Coverage   int
	Iterations int
	// MaxGrant caps how much extra fuel this job can absorb in phase 2.
	MaxGrant int
}

// LedgerStats summarises one Reallocate decision.
type LedgerStats struct {
	// Returned is the fuel pool donated by saturated jobs.
	Returned int
	// Reallocated is the portion granted out (≤ Returned; the rest went
	// undistributed because every recipient hit its MaxGrant).
	Reallocated int
	// Saturated counts donor jobs.
	Saturated int
	// Recipients counts jobs granted fuel.
	Recipients int
}

// rateLess reports whether a's coverage rate is strictly below b's,
// by integer cross-multiplication (no floats in scheduling decisions).
// Jobs with zero iterations rank below any job with a rate.
func rateLess(a, b JobPhase) bool {
	if a.Iterations == 0 || b.Iterations == 0 {
		return a.Iterations == 0 && b.Iterations != 0 && b.Coverage > 0
	}
	return a.Coverage*b.Iterations < b.Coverage*a.Iterations
}

// Reallocate is the campaign fuel ledger: saturated jobs pool their unspent
// fuel, and still-progressing executed jobs receive it ordered by static
// score (descending), then coverage rate (descending), then ID (ascending).
// When every executed job saturated, the pool second-winds back to the
// saturated jobs under the same ranking instead of evaporating.
// The pool splits evenly across recipients with the remainder going to the
// highest-ranked, each grant capped at the job's MaxGrant; capped leftovers
// cascade down the ranking. The result maps job ID → extra iterations.
//
// ISSUE 10 names memo hit rate as a ranking signal, but memo counters are
// scheduling-dependent (internal/memo documents that hit totals vary with
// job interleaving), so using them would break 1/4/8-worker reproducibility.
// Coverage rate — a pure function of (seed, observed coverage) — takes its
// place; DESIGN.md records the deviation.
func Reallocate(phases []JobPhase) (map[int]int, LedgerStats) {
	var stats LedgerStats
	var recipients, saturated []JobPhase
	for _, p := range phases {
		if !p.Executed {
			continue
		}
		if p.Saturated {
			stats.Saturated++
			stats.Returned += p.FuelUnspent
			if p.MaxGrant > 0 {
				saturated = append(saturated, p)
			}
			continue
		}
		if p.MaxGrant > 0 {
			recipients = append(recipients, p)
		}
	}
	if len(recipients) == 0 {
		// Second wind: with every executed job saturated the pool has no
		// still-progressing recipient, and without this rule it would
		// evaporate. Regrant it to the saturated jobs themselves under the
		// same ranking — ContinuePhase opens a fresh saturation window, so
		// a grant is a deliberate second chance, not a busy-loop: a job
		// that re-saturates just returns the remainder at its end.
		recipients = saturated
	}
	if stats.Returned == 0 || len(recipients) == 0 {
		return nil, stats
	}
	sort.Slice(recipients, func(i, j int) bool {
		a, b := recipients[i], recipients[j]
		if a.StaticScore != b.StaticScore {
			return a.StaticScore > b.StaticScore
		}
		if rateLess(a, b) != rateLess(b, a) {
			return rateLess(b, a)
		}
		return a.ID < b.ID
	})
	grants := make(map[int]int, len(recipients))
	remaining := stats.Returned
	// Even split with remainder to the highest-ranked; anything a capped
	// recipient cannot absorb is re-split over the rest in further rounds.
	for remaining > 0 {
		open := 0
		for _, r := range recipients {
			if grants[r.ID] < r.MaxGrant {
				open++
			}
		}
		if open == 0 {
			break
		}
		share, rem := remaining/open, remaining%open
		if share == 0 && rem > 0 {
			share, rem = 1, 0
		}
		progressed := false
		for _, r := range recipients {
			if remaining == 0 {
				break
			}
			head := grants[r.ID]
			if head >= r.MaxGrant {
				continue
			}
			give := share
			if rem > 0 {
				give++
				rem--
			}
			if give > r.MaxGrant-head {
				give = r.MaxGrant - head
			}
			if give > remaining {
				give = remaining
			}
			if give > 0 {
				grants[r.ID] = head + give
				remaining -= give
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for _, g := range grants {
		stats.Reallocated += g
	}
	stats.Recipients = len(grants)
	return grants, stats
}
