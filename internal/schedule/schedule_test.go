package schedule

import (
	"reflect"
	"testing"
)

// A planner over equal-energy arms degrades to plain round-robin — the
// Adaptive=off behaviour the digest gates rely on.
func TestNextEqualEnergyIsRoundRobin(t *testing.T) {
	p := NewPlanner()
	for i := 0; i < 4; i++ {
		p.AddArm(i, uint64(i), 0, BaseEnergy)
	}
	for round := 0; round < 3; round++ {
		for want := 0; want < 4; want++ {
			if got := p.Next(); got != want {
				t.Fatalf("round %d: Next() = %d, want %d", round, got, want)
			}
		}
	}
}

// A boosted arm fires proportionally more often, but the floor keeps every
// arm cycling — no payload kind is ever starved.
func TestNextWeightsFollowEnergy(t *testing.T) {
	p := NewPlanner()
	hot := p.AddArm(0, 1, 0, 4*BaseEnergy)
	cold := p.AddArm(1, 2, 0, BaseEnergy)
	fired := map[int]int{}
	for i := 0; i < 50; i++ {
		fired[p.Next()]++
	}
	if fired[hot] != 40 || fired[cold] != 10 {
		t.Fatalf("fired = %v, want 4:1 split (40/10)", fired)
	}
}

// Replaying a fixed coverage trace yields the identical arm sequence and
// energies — the determinism the 1/4/8-worker gates depend on.
func TestPlannerDeterministicTrace(t *testing.T) {
	trace := []bool{true, false, false, true, false, false, false, false, false, false, true}
	run := func() ([]int, []int, Counters) {
		p := NewPlanner()
		p.AddArm(0, 1, 0, 0)
		p.AddArm(1, 2, 0, 0)
		p.AddArm(2, 3, 0, 0)
		var picks, energies []int
		for _, gained := range trace {
			i := p.Next()
			p.Observe(i, gained)
			picks = append(picks, i)
			energies = append(energies, p.Energy(i))
		}
		return picks, energies, p.Counters()
	}
	p1, e1, c1 := run()
	p2, e2, c2 := run()
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(e1, e2) || c1 != c2 {
		t.Fatalf("replay diverged: picks %v vs %v, energies %v vs %v, counters %+v vs %+v",
			p1, p2, e1, e2, c1, c2)
	}
}

func TestObserveBoostAndClamp(t *testing.T) {
	p := NewPlanner()
	i := p.AddArm(0, 1, 0, 0)
	if p.Energy(i) != BaseEnergy {
		t.Fatalf("initial energy = %d, want %d", p.Energy(i), BaseEnergy)
	}
	for n := 0; n < 10; n++ {
		p.Observe(i, true)
	}
	if p.Energy(i) != MaxEnergy {
		t.Fatalf("energy after boosts = %d, want clamp at %d", p.Energy(i), MaxEnergy)
	}
	// 8→16→32→64: three real updates, further boosts are no-ops at the cap.
	if got := p.Counters().EnergyUpdates; got != 3 {
		t.Fatalf("EnergyUpdates = %d, want 3", got)
	}
}

func TestObserveDecayAfterDryStreak(t *testing.T) {
	p := NewPlanner()
	i := p.AddArm(0, 1, 0, 32)
	for n := 0; n < DecayAfter-1; n++ {
		p.Observe(i, false)
	}
	if p.Energy(i) != 32 {
		t.Fatalf("energy decayed before the streak completed: %d", p.Energy(i))
	}
	p.Observe(i, false)
	if p.Energy(i) != 16 {
		t.Fatalf("energy after one streak = %d, want 16", p.Energy(i))
	}
	// A hit resets the streak.
	for n := 0; n < DecayAfter-1; n++ {
		p.Observe(i, false)
	}
	p.Observe(i, true)
	p.Observe(i, false)
	if p.Energy(i) != 32 {
		t.Fatalf("energy after hit = %d, want boost back to 32", p.Energy(i))
	}
	// Decay never crosses the floor.
	for n := 0; n < 20*DecayAfter; n++ {
		p.Observe(i, false)
	}
	if p.Energy(i) != MinEnergy {
		t.Fatalf("energy floor = %d, want %d", p.Energy(i), MinEnergy)
	}
}

// Composite arms registered mid-run join the rotation deterministically at
// the next Next call.
func TestAddArmMidRun(t *testing.T) {
	p := NewPlanner()
	p.AddArm(0, 1, 0, BaseEnergy)
	p.AddArm(1, 2, 0, BaseEnergy)
	_ = p.Next()
	_ = p.Next()
	j := p.AddArm(2, 2, 7, BaseEnergy)
	if !p.HasArm(2, 2, 7) || p.HasArm(2, 2, 8) {
		t.Fatal("HasArm mismatch after mid-run AddArm")
	}
	seen := map[int]bool{}
	for n := 0; n < 6; n++ {
		seen[p.Next()] = true
	}
	if !seen[j] {
		t.Fatalf("new arm %d never fired in two rounds: %v", j, seen)
	}
	kind, action, writer := p.Arm(j)
	if kind != 2 || action != 2 || writer != 7 {
		t.Fatalf("Arm(%d) = (%d,%d,%d), want (2,2,7)", j, kind, action, writer)
	}
}

func TestReallocatePoolsAndRanks(t *testing.T) {
	phases := []JobPhase{
		{ID: 0, Executed: true, Saturated: true, FuelUnspent: 90},
		{ID: 1, Executed: true, StaticScore: 2000, Coverage: 10, Iterations: 100, MaxGrant: 100},
		{ID: 2, Executed: true, StaticScore: 1000, Coverage: 30, Iterations: 100, MaxGrant: 100},
		{ID: 3, Executed: false, StaticScore: 9000, MaxGrant: 100}, // skipped job: no fuel
		{ID: 4, Executed: true, Saturated: true, FuelUnspent: 10},
	}
	grants, stats := Reallocate(phases)
	if stats.Returned != 100 || stats.Saturated != 2 {
		t.Fatalf("stats = %+v, want Returned=100 Saturated=2", stats)
	}
	if stats.Reallocated != 100 || stats.Recipients != 2 {
		t.Fatalf("stats = %+v, want Reallocated=100 Recipients=2", stats)
	}
	if !reflect.DeepEqual(grants, map[int]int{1: 50, 2: 50}) {
		t.Fatalf("grants = %v, want even 50/50 split", grants)
	}
}

func TestReallocateRemainderToHighestRank(t *testing.T) {
	phases := []JobPhase{
		{ID: 0, Executed: true, Saturated: true, FuelUnspent: 101},
		// Equal static score: coverage rate breaks the tie (3/100 > 1/50).
		{ID: 1, Executed: true, StaticScore: 1000, Coverage: 1, Iterations: 50, MaxGrant: 1000},
		{ID: 2, Executed: true, StaticScore: 1000, Coverage: 3, Iterations: 100, MaxGrant: 1000},
	}
	grants, _ := Reallocate(phases)
	if !reflect.DeepEqual(grants, map[int]int{1: 50, 2: 51}) {
		t.Fatalf("grants = %v, want remainder on the higher-rate job 2", grants)
	}
}

func TestReallocateCapsCascade(t *testing.T) {
	phases := []JobPhase{
		{ID: 0, Executed: true, Saturated: true, FuelUnspent: 100},
		{ID: 1, Executed: true, StaticScore: 2000, MaxGrant: 10},
		{ID: 2, Executed: true, StaticScore: 1000, MaxGrant: 60},
	}
	grants, stats := Reallocate(phases)
	// Job 1 absorbs its cap; the overflow cascades to job 2 up to its cap;
	// the rest goes undistributed.
	if !reflect.DeepEqual(grants, map[int]int{1: 10, 2: 60}) {
		t.Fatalf("grants = %v, want caps honoured (10/60)", grants)
	}
	if stats.Reallocated != 70 || stats.Returned != 100 {
		t.Fatalf("stats = %+v, want Reallocated=70 of Returned=100", stats)
	}
}

func TestReallocateNoDonorsOrNoRecipients(t *testing.T) {
	if g, s := Reallocate([]JobPhase{{ID: 1, Executed: true, MaxGrant: 50}}); g != nil || s.Returned != 0 {
		t.Fatalf("no donors: grants=%v stats=%+v", g, s)
	}
	if g, s := Reallocate([]JobPhase{{ID: 0, Executed: true, Saturated: true, FuelUnspent: 40}}); g != nil || s.Returned != 40 || s.Reallocated != 0 {
		t.Fatalf("no recipients: grants=%v stats=%+v", g, s)
	}
}

// Input order never affects the grant map — the campaign may collect phase
// summaries in completion order.
func TestReallocateOrderInvariant(t *testing.T) {
	phases := []JobPhase{
		{ID: 3, Executed: true, StaticScore: 500, Coverage: 2, Iterations: 40, MaxGrant: 30},
		{ID: 0, Executed: true, Saturated: true, FuelUnspent: 77},
		{ID: 2, Executed: true, StaticScore: 500, Coverage: 2, Iterations: 40, MaxGrant: 30},
		{ID: 1, Executed: true, StaticScore: 900, Coverage: 0, Iterations: 40, MaxGrant: 30},
	}
	want, wantStats := Reallocate(phases)
	for shift := 1; shift < len(phases); shift++ {
		rot := append(append([]JobPhase{}, phases[shift:]...), phases[:shift]...)
		got, gotStats := Reallocate(rot)
		if !reflect.DeepEqual(got, want) || gotStats != wantStats {
			t.Fatalf("shift %d: grants %v (stats %+v), want %v (stats %+v)", shift, got, gotStats, want, wantStats)
		}
	}
}

func TestCountersAddAndZero(t *testing.T) {
	var c Counters
	if !c.Zero() {
		t.Fatal("fresh counters not zero")
	}
	c.Add(Counters{EnergyUpdates: 1, CompositeFired: 2, SaturationSkips: 3, FuelReturned: 4, FuelReallocated: 5, SaturatedJobs: 6})
	c.Add(Counters{EnergyUpdates: 1})
	want := Counters{EnergyUpdates: 2, CompositeFired: 2, SaturationSkips: 3, FuelReturned: 4, FuelReallocated: 5, SaturatedJobs: 6}
	if c != want {
		t.Fatalf("Add = %+v, want %+v", c, want)
	}
	if c.Zero() {
		t.Fatal("populated counters reported zero")
	}
}

// TestReallocateSecondWind: with every executed job saturated there is no
// still-progressing recipient, and the pool regrants to the saturated jobs
// themselves (same ranking) instead of evaporating.
func TestReallocateSecondWind(t *testing.T) {
	phases := []JobPhase{
		{ID: 0, Executed: true, Saturated: true, FuelUnspent: 60, StaticScore: 100, Coverage: 5, Iterations: 40, MaxGrant: 100},
		{ID: 1, Executed: true, Saturated: true, FuelUnspent: 40, StaticScore: 900, Coverage: 1, Iterations: 40, MaxGrant: 100},
		{ID: 2, Executed: false, StaticScore: 9999, MaxGrant: 100}, // replayed/skipped: still no fuel
	}
	grants, stats := Reallocate(phases)
	if !reflect.DeepEqual(grants, map[int]int{0: 50, 1: 50}) {
		t.Fatalf("grants = %v, want the 100-unit pool split across the saturated donors", grants)
	}
	if stats.Returned != 100 || stats.Reallocated != 100 || stats.Recipients != 2 || stats.Saturated != 2 {
		t.Fatalf("stats = %+v, want Returned=Reallocated=100 Recipients=Saturated=2", stats)
	}
	// A single still-progressing job suppresses the second wind: the pool
	// goes to it alone.
	phases[2] = JobPhase{ID: 2, Executed: true, StaticScore: 1, Coverage: 1, Iterations: 10, MaxGrant: 100}
	grants, stats = Reallocate(phases)
	if !reflect.DeepEqual(grants, map[int]int{2: 100}) {
		t.Fatalf("grants = %v, want the progressing job to take the whole pool", grants)
	}
	if stats.Recipients != 1 {
		t.Fatalf("stats = %+v, want Recipients=1", stats)
	}
}
