// Package schedule is the adaptive budget-allocation layer (ROADMAP item 3,
// EOSFuzzer/ContractFuzzer lineage): pure decision logic for spending a
// fuzzing campaign's iteration budget where it buys coverage, at two levels.
//
// Intra-job, Planner replaces the fuzzer's fixed round-robin with a
// deterministic power schedule: every (payload kind, action) arm carries an
// energy score that doubles when the arm just uncovered new branches and
// halves after a dry streak, and arms are drawn by smooth weighted
// round-robin over those energies — a high-energy arm fires proportionally
// more often, but the energy floor guarantees every arm keeps cycling, so no
// oracle payload is ever starved. Composite arms pair a table's writer with
// a blocked reader (the DBG's writer→reader edges) so dependent transactions
// are explored together.
//
// Inter-job, Reallocate is the campaign fuel ledger: jobs that saturated
// (no coverage delta over the saturation window) return their unspent
// iterations to the campaign, which regrants them to still-progressing jobs
// ordered by static triage score and observed coverage rate.
//
// Everything here is a pure function of its inputs — no wall clock, no
// unseeded randomness, no map iteration — which is what makes adaptive
// campaigns reproducible at any worker count: the fuzzer feeds the planner
// only per-job observations, and the ledger sees only per-job phase
// summaries, so neither can observe scheduling or timing.
package schedule

// Energy bounds and update cadence of the power schedule. The range is
// deliberately narrow (1..64): the schedule biases the round-robin rather
// than replacing it, so a cold arm at the floor still fires at 1/64 of a hot
// arm's rate — enough to keep every adversary-oracle payload alive.
const (
	// MinEnergy is the floor: no arm is ever starved below it.
	MinEnergy = 1
	// BaseEnergy is a fresh arm's score.
	BaseEnergy = 8
	// MaxEnergy caps the boost of a repeatedly-productive arm.
	MaxEnergy = 64
	// DecayAfter is the dry-streak length (consecutive fires without new
	// coverage) after which an arm's energy halves.
	DecayAfter = 8
)

// Counters are the scheduler's reporting-only statistics. They are excluded
// from campaign digests (like memo counters) but summed into
// campaign.Report so adaptive runs are observable.
type Counters struct {
	// EnergyUpdates counts arm-energy changes (boosts and decays).
	EnergyUpdates int
	// CompositeFired counts composite writer→reader arm executions.
	CompositeFired int
	// SaturationSkips counts iterations not executed because the job
	// stopped at its saturation window — the fuel handed back to the
	// campaign ledger.
	SaturationSkips int
	// FuelReturned and FuelReallocated are the ledger totals: iterations
	// returned by saturated jobs, and the subset regranted to
	// still-progressing jobs (the difference went undistributed — no
	// recipient had headroom).
	FuelReturned    int
	FuelReallocated int
	// SaturatedJobs counts jobs that hit their saturation window.
	SaturatedJobs int
}

// Add accumulates another counter set (campaign aggregation).
func (c *Counters) Add(o Counters) {
	c.EnergyUpdates += o.EnergyUpdates
	c.CompositeFired += o.CompositeFired
	c.SaturationSkips += o.SaturationSkips
	c.FuelReturned += o.FuelReturned
	c.FuelReallocated += o.FuelReallocated
	c.SaturatedJobs += o.SaturatedJobs
}

// Zero reports whether no counter fired (adaptive off, or nothing happened).
func (c Counters) Zero() bool { return c == Counters{} }

// armState is one schedulable arm. The planner never interprets Kind /
// Action / Writer — they are the caller's labels, carried so the fuzzer can
// map a selection back to a payload.
type armState struct {
	kind           int
	action, writer uint64
	energy         int
	credit         int
	dry            int
}

// Planner is the intra-job power schedule: smooth weighted round-robin over
// arm energies. All state is job-local and every method is deterministic,
// so two runs observing the same coverage trace make identical decisions.
type Planner struct {
	arms     []armState
	counters Counters
}

// NewPlanner returns an empty planner; add arms with AddArm.
func NewPlanner() *Planner { return &Planner{} }

// AddArm registers an arm with the given labels and initial energy
// (clamped to [MinEnergy, MaxEnergy]; 0 means BaseEnergy) and returns its
// index. Indices are dense and stable — selection is index-based, never
// map-ordered.
func (p *Planner) AddArm(kind int, action, writer uint64, energy int) int {
	if energy == 0 {
		energy = BaseEnergy
	}
	energy = clampEnergy(energy)
	p.arms = append(p.arms, armState{kind: kind, action: action, writer: writer, energy: energy})
	return len(p.arms) - 1
}

// Arms returns the number of registered arms.
func (p *Planner) Arms() int { return len(p.arms) }

// Arm returns the labels arm i was registered with.
func (p *Planner) Arm(i int) (kind int, action, writer uint64) {
	a := &p.arms[i]
	return a.kind, a.action, a.writer
}

// Energy returns arm i's current energy (tests and reporting).
func (p *Planner) Energy(i int) int { return p.arms[i].energy }

// HasArm reports whether an arm with exactly these labels exists. Linear
// scan over a handful of arms — allocation-free, and the arm count is
// bounded by actions + composite pairs.
func (p *Planner) HasArm(kind int, action, writer uint64) bool {
	for i := range p.arms {
		a := &p.arms[i]
		if a.kind == kind && a.action == action && a.writer == writer {
			return true
		}
	}
	return false
}

// Next picks the next arm by smooth weighted round-robin: every arm's
// credit grows by its energy, the highest credit fires (ties to the lowest
// index), and the winner pays the total energy back. Over any window the
// fire counts converge to the energy proportions, and the sequence is a
// pure function of the energy history.
func (p *Planner) Next() int {
	best, total := 0, 0
	for i := range p.arms {
		a := &p.arms[i]
		a.credit += a.energy
		total += a.energy
		if a.credit > p.arms[best].credit {
			best = i
		}
	}
	p.arms[best].credit -= total
	return best
}

// Observe feeds the outcome of firing arm i back into the schedule: new
// coverage doubles the arm's energy and clears its dry streak; a dry streak
// of DecayAfter consecutive fires halves it (exponential decay toward the
// floor).
func (p *Planner) Observe(i int, newCoverage bool) {
	a := &p.arms[i]
	if newCoverage {
		if e := clampEnergy(a.energy * 2); e != a.energy {
			a.energy = e
			p.counters.EnergyUpdates++
		}
		a.dry = 0
		return
	}
	a.dry++
	if a.dry >= DecayAfter {
		a.dry = 0
		if e := clampEnergy(a.energy / 2); e != a.energy {
			a.energy = e
			p.counters.EnergyUpdates++
		}
	}
}

// CompositeFired records one composite writer→reader execution.
func (p *Planner) CompositeFired() { p.counters.CompositeFired++ }

// SaturationSkipped records n iterations the job handed back to the
// campaign ledger instead of executing.
func (p *Planner) SaturationSkipped(n int) { p.counters.SaturationSkips += n }

// Counters returns the planner's accumulated statistics.
func (p *Planner) Counters() Counters { return p.counters }

func clampEnergy(e int) int {
	if e < MinEnergy {
		return MinEnergy
	}
	if e > MaxEnergy {
		return MaxEnergy
	}
	return e
}
