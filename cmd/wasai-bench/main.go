// Command wasai-bench regenerates the paper's evaluation tables and
// figures (DESIGN.md's experiment index maps each to its section).
//
// Usage:
//
//	wasai-bench -exp table4 [-scale 0.1] [-seed 1]
//	wasai-bench -exp all    -scale 0.05
//	wasai-bench -exp rq4    -workers 8 -journal rq4.jsonl
//	wasai-bench -exp rq4    -journal rq4.jsonl -resume   # pick up a killed run
//	wasai-bench -exp chaos  -fault-rate 0.2              # resilience smoke
//	wasai-bench -exp servechaos                          # daemon flood smoke
//	wasai-bench -exp memo                                # memoization differential
//	wasai-bench -exp regress -baseline BENCH_BASELINE.json
//
// Experiments: fig3, table4, table5, table6, rq4, all, plus chaos,
// servechaos, memo, incr, fastvm, verdict, adaptive and regress (run
// explicitly; they are not part of "all"). Scale
// multiplies the dataset sizes (1.0 reproduces the full paper-sized
// benchmark; small scales keep the shapes at a fraction of the runtime).
// Workers shards the per-contract campaigns across the campaign engine;
// findings are byte-identical for any worker count.
//
// Memoization: -memo off|on|shared threads the cross-job cache
// (internal/memo) through the fig3/table/rq4/triage experiments; findings
// are byte-identical either way. -exp memo runs the cache-on/off
// differential at worker counts 1/4/8 and exits non-zero unless digests are
// identical and DPLL solver invocations drop ≥30%. -incremental threads the
// prefix-sharing incremental solver (assumption solves on one shared SAT
// instance per flip family, plus word-level simplification) through the same
// experiments, again findings-invariant; -exp incr runs the incremental
// on/off differential at worker counts 1/4/8 and exits non-zero unless
// digests are identical and total CDCL conflicts drop ≥30%. -verdicts
// threads abstract-interpretation verdict triage (internal/static/absint)
// through the same experiments: all-proven-negative jobs skip execution and
// proven-positive jobs schedule confirmed-first, findings-invariant either
// way. -exp verdict runs the verdict gate — per-class soundness against a
// dynamic campaign in both directions (zero violations), ≥30% of the wild
// (contract, class) verdict matrix decided statically, and byte-identical
// findings digests with verdicts off/on at worker counts 1/4/8. -exp
// onchain runs the on-chain-data oracle gate: every injected fixture (both
// polarities of all classes plus boilerplate) through full campaigns, with
// perfect per-class precision/recall against generator ground truth and
// byte-identical findings digests at worker counts 1/4/8. -adaptive
// threads the coverage-driven power schedule and campaign fuel ledger
// (internal/schedule) through the fig3/table/rq4 experiments — every
// scheduling decision is a pure function of (seed, observed coverage), so
// results stay byte-identical at any worker count, though NOT to a static
// run of the same budget (the fuel moves). -exp adaptive runs the
// scheduling gate: under equal budgets the adaptive runs must cover at
// least as many branches and score at least as many ground-truth findings
// as the static round-robin on every corpus, strictly more coverage on at
// least one, with digest identity at workers 1/4/8 and across a journal
// kill+resume. -exp regress
// runs the fixed benchmark workload (wall-clock is the median of three
// legs; solver counters are single-leg exact), writes a BENCH_<date>.json
// record (-out overrides the path) and compares it against the committed
// baseline (-baseline, default BENCH_BASELINE.json), failing on digest
// changes or >10% solver/wall regressions; -write-baseline regenerates the
// baseline after an intentional change.
//
// Profiling: -cpuprofile and -memprofile write pprof profiles of whatever
// experiment ran (`make profile` captures the regress workload), so perf
// work starts from evidence instead of guesses.
//
// Resilience: -journal checkpoints the rq4 sweep to an append-only JSONL
// file and -resume replays completed contracts from it after a crash or
// kill; -retries re-attempts failed contracts with degraded budgets. Any
// terminal (post-retry) job failure makes wasai-bench exit non-zero after
// printing the per-failure-class counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/memo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wasai-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: fig3|table4|table5|table6|rq4|triage|chaos|servechaos|memo|incr|fastvm|verdict|onchain|adaptive|regress|all (chaos/servechaos/memo/incr/fastvm/verdict/onchain/adaptive/regress only run when named)")
		scale     = flag.Float64("scale", 0.1, "dataset scale factor (0,1]")
		seed      = flag.Int64("seed", 1, "generation seed")
		iters     = flag.Int("iterations", 240, "fuzzing budget per contract")
		workers   = flag.Int("workers", 0, "campaign-engine worker count (0 = GOMAXPROCS); findings are identical for any value")
		svg       = flag.String("svg", "", "fig3: also write the figure as an SVG to this path")
		triage    = flag.Bool("static-triage", false, "run only the static-triage agreement experiment (shorthand for -exp triage)")
		journal   = flag.String("journal", "", "rq4: checkpoint the sweep to this JSONL journal")
		resume    = flag.Bool("resume", false, "rq4: replay contracts already recorded in -journal instead of re-running them")
		retries   = flag.Int("retries", 1, "max attempts per contract; attempts after the first run with degraded budgets")
		faultRate = flag.Float64("fault-rate", 0.2, "chaos: fraction of jobs whose first attempt is faulted")
		memoFlag  = flag.String("memo", "", "cross-job memoization: off|on|shared (empty = off); findings are identical either way")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "regress: committed baseline record to compare against")
		outPath   = flag.String("out", "", "regress: where to write the fresh record (default BENCH_<date>.json)")
		writeBase = flag.Bool("write-baseline", false, "regress: (re)write -baseline from this run instead of comparing")
		incr      = flag.Bool("incremental", false, "incremental prefix-sharing solver for flip queries; findings are identical either way")
		fastvm    = flag.Bool("fastvm", false, "decoded-IR execution engine; findings are identical either way")
		verdicts  = flag.Bool("verdicts", false, "abstract-interpretation verdict triage; findings are identical either way")
		adaptive  = flag.Bool("adaptive", false, "coverage-driven power schedule + campaign fuel ledger; deterministic at any worker count but NOT digest-neutral vs a static run")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	)
	flag.Parse()
	if *triage {
		*exp = "triage"
	}
	memoMode, err := memo.ParseMode(*memoFlag)
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wasai-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wasai-bench: memprofile:", err)
			}
		}()
	}

	opts := bench.Options{Scale: *scale, Seed: *seed}
	evalCfg := bench.DefaultEvalConfig()
	evalCfg.FuzzIterations = *iters
	evalCfg.Seed = *seed
	evalCfg.Workers = *workers
	evalCfg.Memo = memoMode
	evalCfg.Incremental = *incr
	evalCfg.FastVM = *fastvm
	evalCfg.Verdicts = *verdicts
	evalCfg.Adaptive = *adaptive
	tools := []bench.Tool{bench.ToolWASAI, bench.ToolEOSFuzzer, bench.ToolEOSAFE}

	runExp := func(name string, f func() error) error {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		return nil
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig3") {
		if err := runExp("Figure 3 (RQ1 code coverage)", func() error {
			cfg := bench.DefaultCoverageConfig()
			cfg.Seed = *seed
			cfg.Iterations = *iters
			cfg.Workers = *workers
			cfg.Memo = memoMode
			cfg.Incremental = *incr
			cfg.FastVM = *fastvm
			cfg.Verdicts = *verdicts
			cfg.Adaptive = *adaptive
			cfg.NumContracts = int(float64(cfg.NumContracts) * *scale)
			if cfg.NumContracts < 5 {
				cfg.NumContracts = 5
			}
			series, err := bench.EvaluateCoverage(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderCoverage(series))
			if *svg != "" {
				if err := os.WriteFile(*svg, []byte(bench.RenderCoverageSVG(series)), 0o644); err != nil {
					return err
				}
				fmt.Printf("figure written to %s\n", *svg)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table4") {
		if err := runExp("Table 4 (RQ2 ground-truth accuracy)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(ds, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 4", ds, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table5") {
		if err := runExp("Table 5 (RQ3 code obfuscation)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			obf, err := bench.Obfuscate(ds, *seed)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(obf, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 5", obf, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table6") {
		if err := runExp("Table 6 (RQ3 complicated verification)", func() error {
			ds, err := bench.BuildVerification(bench.Table6Counts, opts)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(ds, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 6", ds, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("triage") {
		if err := runExp("Static triage (static-vs-dynamic agreement)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			tcfg := bench.DefaultTriageConfig()
			tcfg.FuzzIterations = *iters
			tcfg.Seed = *seed
			tcfg.Workers = *workers
			tcfg.Memo = memoMode
			tcfg.Incremental = *incr
			tcfg.FastVM = *fastvm
			tcfg.Verdicts = *verdicts
			res, err := bench.EvaluateTriage(context.Background(), ds, tcfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("rq4") {
		if err := runExp("RQ4 (vulnerabilities in the wild)", func() error {
			cfg := bench.DefaultWildConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			cfg.Workers = *workers
			cfg.Journal = *journal
			cfg.Resume = *resume
			cfg.MaxAttempts = *retries
			cfg.Memo = memoMode
			cfg.Incremental = *incr
			cfg.FastVM = *fastvm
			cfg.Verdicts = *verdicts
			cfg.Adaptive = *adaptive
			cfg.NumContracts = int(float64(cfg.NumContracts) * *scale)
			if cfg.NumContracts < 20 {
				cfg.NumContracts = 20
			}
			res, err := bench.EvaluateWild(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderWild(res))
			if res.TerminalFailures > 0 {
				return fmt.Errorf("%d contracts failed terminally (see failure-class counts above)", res.TerminalFailures)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "memo" {
		if err := runExp("Memo (cross-job memoization differential)", func() error {
			cfg := bench.DefaultMemoConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			res, err := bench.EvaluateMemo(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderMemo(res))
			if !res.Passed() {
				return fmt.Errorf("memo experiment failed: digests identical=%v, min DPLL reduction %.1f%% (need ≥30%%)",
					res.DigestMatch, 100*res.MinReduction())
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "incr" {
		if err := runExp("Incr (incremental prefix-sharing solver differential)", func() error {
			cfg := bench.DefaultIncrConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			res, err := bench.EvaluateIncr(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderIncr(res))
			if !res.Passed() {
				return fmt.Errorf("incr experiment failed: digests identical=%v, agreement=%v, conflict reduction %.1f%% (need ≥30%%)",
					res.DigestMatch, res.Chain.Agreement, 100*res.Chain.Reduction())
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "fastvm" {
		if err := runExp("FastVM (decoded-IR engine differential)", func() error {
			cfg := bench.DefaultFastVMConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			res, err := bench.EvaluateFastVM(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderFastVM(res))
			if !res.Passed() {
				return fmt.Errorf("fastvm experiment failed: digests identical=%v, agreement=%v, speedup %.2fx (need >=2x)",
					res.DigestMatch, res.Throughput.ResultsMatch, res.Throughput.Speedup())
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "verdict" {
		if err := runExp("Verdict (abstract-interpretation verdict engine)", func() error {
			cfg := bench.DefaultVerdictConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			res, err := bench.EvaluateVerdict(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderVerdict(res))
			if !res.Passed() {
				return fmt.Errorf("verdict experiment failed: violations neg=%d pos=%d, wild resolution %.0f%% (need ≥30%%), digests identical=%v",
					res.NegViolations(), res.PosViolations(), 100*res.Resolution(), res.DigestMatch)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "onchain" {
		if err := runExp("OnChain (on-chain-data oracle P/R gate)", func() error {
			cfg := bench.DefaultOnChainConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			res, err := bench.EvaluateOnChain(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderOnChain(res))
			if !res.Passed() {
				return fmt.Errorf("onchain experiment failed: %d P/R violations, digests identical=%v",
					res.Violations(), res.DigestMatch)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "adaptive" {
		if err := runExp("Adaptive (coverage-driven scheduling differential)", func() error {
			cfg := bench.DefaultAdaptiveConfig()
			if *workers > 0 {
				cfg.Workers = *workers
			}
			res, err := bench.EvaluateAdaptive(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAdaptive(res))
			if !res.Passed() {
				return fmt.Errorf("adaptive experiment failed: coverage≥static=%v findings≥static=%v strictly-better=%v budget=%v digests=%v resume=%v",
					res.CoverageNeverWorse(), res.FindingsNeverWorse(), res.StrictlyBetter(),
					res.BudgetRespected(), res.DigestMatch, res.ResumeMatch)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "regress" {
		if err := runExp("Regress (benchmark regression vs baseline)", func() error {
			cfg := bench.DefaultRegressConfig()
			current, err := bench.RunRegress(cfg)
			if err != nil {
				return err
			}
			if *writeBase {
				if err := bench.WriteRegress(*baseline, current); err != nil {
					return err
				}
				fmt.Print(bench.RenderRegress(nil, current, nil))
				fmt.Printf("baseline written to %s\n", *baseline)
				return nil
			}
			out := *outPath
			if out == "" {
				out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
			}
			if err := bench.WriteRegress(out, current); err != nil {
				return err
			}
			base, err := bench.LoadRegress(*baseline)
			if err != nil {
				return fmt.Errorf("no usable baseline (run with -write-baseline or make bench-baseline): %w", err)
			}
			problems := bench.CompareRegress(base, current)
			fmt.Print(bench.RenderRegress(base, current, problems))
			fmt.Printf("record written to %s\n", out)
			if len(problems) > 0 {
				return fmt.Errorf("benchmark regression: %d problem(s), see above", len(problems))
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "chaos" {
		if err := runExp("Chaos (campaign resilience under fault injection)", func() error {
			cfg := bench.DefaultChaosConfig()
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.FaultRate = *faultRate
			if *retries > 1 {
				cfg.MaxAttempts = *retries
			}
			res, err := bench.EvaluateChaos(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderChaos(res))
			if !res.Passed() {
				return fmt.Errorf("chaos experiment failed: %d terminal failures, %d verdict mismatches",
					res.TerminalFailures, res.VerdictMismatches)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "servechaos" {
		if err := runExp("Serve-chaos (daemon admission + digest identity under flood)", func() error {
			cfg := bench.DefaultServeChaosConfig()
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.FaultRate = *faultRate
			if *retries > 1 {
				cfg.MaxAttempts = *retries
			}
			res, err := bench.EvaluateServeChaos(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderServeChaos(res))
			if !res.Passed() {
				return fmt.Errorf("servechaos experiment failed: shed=%d failed=%d mismatches=%d tenants=%d/%d",
					res.Shed, res.Failed, res.DigestMismatches, res.TenantsAdmitted, res.Tenants)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
