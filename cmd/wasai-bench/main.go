// Command wasai-bench regenerates the paper's evaluation tables and
// figures (DESIGN.md's experiment index maps each to its section).
//
// Usage:
//
//	wasai-bench -exp table4 [-scale 0.1] [-seed 1]
//	wasai-bench -exp all    -scale 0.05
//	wasai-bench -exp rq4    -workers 8 -journal rq4.jsonl
//	wasai-bench -exp rq4    -journal rq4.jsonl -resume   # pick up a killed run
//	wasai-bench -exp chaos  -fault-rate 0.2              # resilience smoke
//
// Experiments: fig3, table4, table5, table6, rq4, all, plus chaos (run
// explicitly; it is not part of "all"). Scale multiplies the dataset sizes
// (1.0 reproduces the full paper-sized benchmark; small scales keep the
// shapes at a fraction of the runtime). Workers shards the per-contract
// campaigns across the campaign engine; findings are byte-identical for
// any worker count.
//
// Resilience: -journal checkpoints the rq4 sweep to an append-only JSONL
// file and -resume replays completed contracts from it after a crash or
// kill; -retries re-attempts failed contracts with degraded budgets. Any
// terminal (post-retry) job failure makes wasai-bench exit non-zero after
// printing the per-failure-class counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wasai-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "all", "experiment: fig3|table4|table5|table6|rq4|triage|chaos|all (chaos only runs when named)")
		scale     = flag.Float64("scale", 0.1, "dataset scale factor (0,1]")
		seed      = flag.Int64("seed", 1, "generation seed")
		iters     = flag.Int("iterations", 240, "fuzzing budget per contract")
		workers   = flag.Int("workers", 0, "campaign-engine worker count (0 = GOMAXPROCS); findings are identical for any value")
		svg       = flag.String("svg", "", "fig3: also write the figure as an SVG to this path")
		triage    = flag.Bool("static-triage", false, "run only the static-triage agreement experiment (shorthand for -exp triage)")
		journal   = flag.String("journal", "", "rq4: checkpoint the sweep to this JSONL journal")
		resume    = flag.Bool("resume", false, "rq4: replay contracts already recorded in -journal instead of re-running them")
		retries   = flag.Int("retries", 1, "max attempts per contract; attempts after the first run with degraded budgets")
		faultRate = flag.Float64("fault-rate", 0.2, "chaos: fraction of jobs whose first attempt is faulted")
	)
	flag.Parse()
	if *triage {
		*exp = "triage"
	}

	opts := bench.Options{Scale: *scale, Seed: *seed}
	evalCfg := bench.DefaultEvalConfig()
	evalCfg.FuzzIterations = *iters
	evalCfg.Seed = *seed
	evalCfg.Workers = *workers
	tools := []bench.Tool{bench.ToolWASAI, bench.ToolEOSFuzzer, bench.ToolEOSAFE}

	runExp := func(name string, f func() error) error {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		return nil
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig3") {
		if err := runExp("Figure 3 (RQ1 code coverage)", func() error {
			cfg := bench.DefaultCoverageConfig()
			cfg.Seed = *seed
			cfg.Iterations = *iters
			cfg.Workers = *workers
			cfg.NumContracts = int(float64(cfg.NumContracts) * *scale)
			if cfg.NumContracts < 5 {
				cfg.NumContracts = 5
			}
			series, err := bench.EvaluateCoverage(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderCoverage(series))
			if *svg != "" {
				if err := os.WriteFile(*svg, []byte(bench.RenderCoverageSVG(series)), 0o644); err != nil {
					return err
				}
				fmt.Printf("figure written to %s\n", *svg)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table4") {
		if err := runExp("Table 4 (RQ2 ground-truth accuracy)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(ds, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 4", ds, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table5") {
		if err := runExp("Table 5 (RQ3 code obfuscation)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			obf, err := bench.Obfuscate(ds, *seed)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(obf, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 5", obf, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table6") {
		if err := runExp("Table 6 (RQ3 complicated verification)", func() error {
			ds, err := bench.BuildVerification(bench.Table6Counts, opts)
			if err != nil {
				return err
			}
			res, err := bench.EvaluateAccuracy(ds, tools, evalCfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderAccuracyTable("Table 6", ds, res))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("triage") {
		if err := runExp("Static triage (static-vs-dynamic agreement)", func() error {
			ds, err := bench.BuildGroundTruth(bench.Table4Counts, opts)
			if err != nil {
				return err
			}
			tcfg := bench.DefaultTriageConfig()
			tcfg.FuzzIterations = *iters
			tcfg.Seed = *seed
			tcfg.Workers = *workers
			res, err := bench.EvaluateTriage(context.Background(), ds, tcfg)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("rq4") {
		if err := runExp("RQ4 (vulnerabilities in the wild)", func() error {
			cfg := bench.DefaultWildConfig()
			cfg.Seed = *seed
			cfg.FuzzIterations = *iters
			cfg.Workers = *workers
			cfg.Journal = *journal
			cfg.Resume = *resume
			cfg.MaxAttempts = *retries
			cfg.NumContracts = int(float64(cfg.NumContracts) * *scale)
			if cfg.NumContracts < 20 {
				cfg.NumContracts = 20
			}
			res, err := bench.EvaluateWild(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderWild(res))
			if res.TerminalFailures > 0 {
				return fmt.Errorf("%d contracts failed terminally (see failure-class counts above)", res.TerminalFailures)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *exp == "chaos" {
		if err := runExp("Chaos (campaign resilience under fault injection)", func() error {
			cfg := bench.DefaultChaosConfig()
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.FaultRate = *faultRate
			if *retries > 1 {
				cfg.MaxAttempts = *retries
			}
			res, err := bench.EvaluateChaos(cfg)
			if err != nil {
				return err
			}
			fmt.Print(bench.RenderChaos(res))
			if !res.Passed() {
				return fmt.Errorf("chaos experiment failed: %d terminal failures, %d verdict mismatches",
					res.TerminalFailures, res.VerdictMismatches)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
