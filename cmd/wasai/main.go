// Command wasai fuzzes one EOSIO Wasm contract and prints its
// vulnerability report.
//
// Usage:
//
//	wasai -wasm contract.wasm -abi contract.abi.json [-iterations N] [-seed S]
//	wasai -demo [-vulnerable=false]    # run against a built-in sample
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	wasai "repro"
	"repro/internal/contractgen"
	"repro/internal/wasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wasai:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wasmPath   = flag.String("wasm", "", "path to the contract .wasm binary")
		abiPath    = flag.String("abi", "", "path to the contract ABI (JSON)")
		iterations = flag.Int("iterations", 240, "fuzzing transaction budget")
		seed       = flag.Int64("seed", 1, "campaign random seed")
		demo       = flag.Bool("demo", false, "analyze a built-in demo contract instead of files")
		traceOut   = flag.String("trace-out", "", "write the captured traces to this offline file")
		vulnerable = flag.Bool("vulnerable", true, "demo: generate the vulnerable variant")
		memoMode   = flag.String("memo", "", "solver memoization: off|on|shared (empty = off); findings are identical either way")
		storeDir   = flag.String("store", "", "disk-backed memo store directory shared across runs (implies memoization); findings are identical either way")
		incr       = flag.Bool("incremental", false, "incremental prefix-sharing solver for flip queries; findings are identical either way")
		fastvm     = flag.Bool("fastvm", false, "decoded-IR execution engine; findings are identical either way")
		verdicts   = flag.Bool("verdicts", false, "print per-class static verdicts and skip fuzzing when all classes are proven negative; findings are identical either way")
		adaptive   = flag.Bool("adaptive", false, "coverage-driven power schedule: energy-weighted payload/action/seed selection and DBG-aware sequence mutation")
		satWindow  = flag.Int("saturation-window", 0, "adaptive: stop after this many iterations without new coverage (0 = engine default)")
	)
	flag.Parse()

	cfg := wasai.DefaultConfig()
	cfg.Iterations = *iterations
	cfg.Seed = *seed
	cfg.TraceFile = *traceOut
	cfg.Memo = *memoMode
	cfg.StoreDir = *storeDir
	cfg.Incremental = *incr
	cfg.FastVM = *fastvm
	cfg.Verdicts = *verdicts
	cfg.Adaptive = *adaptive
	cfg.SaturationWindow = *satWindow

	var (
		bin     []byte
		abiJSON []byte
		err     error
	)
	switch {
	case *demo:
		c, genErr := contractgen.Generate(contractgen.Spec{
			Class:      contractgen.ClassFakeEOS,
			Vulnerable: *vulnerable,
			Seed:       *seed,
		})
		if genErr != nil {
			return genErr
		}
		if bin, err = wasm.Encode(c.Module); err != nil {
			return err
		}
		if abiJSON, err = json.Marshal(c.ABI); err != nil {
			return err
		}
		fmt.Printf("analyzing built-in demo contract (vulnerable=%v)\n", *vulnerable)
	case *wasmPath != "" && *abiPath != "":
		if bin, err = os.ReadFile(*wasmPath); err != nil {
			return err
		}
		if abiJSON, err = os.ReadFile(*abiPath); err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("need -wasm and -abi, or -demo")
	}

	if *verdicts {
		vr, err := wasai.AnalyzeVerdicts(bin, abiJSON)
		if err != nil {
			return err
		}
		fmt.Printf("static verdicts: complete=%v paths=%d dead-edges=%d\n",
			vr.Complete, vr.Paths, vr.DeadEdges)
		for _, v := range vr.Verdicts {
			fmt.Printf("  %-14s %-15s %s\n", v.Class, v.Verdict, v.Reason)
			if v.Scenario != "" {
				fmt.Printf("  %-14s witness: scenario=%s", "", v.Scenario)
				if v.Action != "" {
					fmt.Printf(" action=%s", v.Action)
				}
				for _, a := range v.Assumptions {
					fmt.Printf(" %s", a)
				}
				fmt.Println()
			}
		}
	}

	report, err := wasai.Analyze(bin, abiJSON, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d transactions, %d distinct branches, %d adaptive seeds\n",
		report.Iterations, report.Coverage, report.AdaptiveSeeds)
	for _, f := range report.Findings {
		mark := "safe"
		if f.Vulnerable {
			mark = "VULNERABLE"
		}
		fmt.Printf("  %-14s %s\n", f.Class, mark)
	}
	if report.Vulnerable() {
		os.Exit(2)
	}
	return nil
}
