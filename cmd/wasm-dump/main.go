// Command wasm-dump decodes a WebAssembly binary and prints its sections
// and (optionally) a full disassembly — handy for inspecting generated and
// instrumented contracts.
//
// Usage:
//
//	wasm-dump [-code] contract.wasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/instrument"
	"repro/internal/wasm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wasm-dump:", err)
		os.Exit(1)
	}
}

func run() error {
	code := flag.Bool("code", false, "disassemble function bodies")
	wat := flag.Bool("wat", false, "print the whole module in wat-like text form")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: wasm-dump [-code] file.wasm")
	}
	bin, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		return err
	}
	if *wat {
		fmt.Print(wasm.Wat(m))
		return nil
	}

	fmt.Printf("types:    %d\n", len(m.Types))
	fmt.Printf("imports:  %d\n", len(m.Imports))
	for _, imp := range m.Imports {
		fmt.Printf("  %s.%s (%s)\n", imp.Module, imp.Name, imp.Kind)
	}
	fmt.Printf("funcs:    %d local (+%d imported)\n", len(m.Funcs), m.NumImportedFuncs())
	fmt.Printf("tables:   %d, memories: %d, globals: %d\n", len(m.Tables), len(m.Memories), len(m.Globals))
	fmt.Printf("exports:  %d\n", len(m.Exports))
	for _, ex := range m.Exports {
		fmt.Printf("  %q %s[%d]\n", ex.Name, ex.Kind, ex.Index)
	}
	fmt.Printf("elems:    %d, data segments: %d, customs: %d\n", len(m.Elems), len(m.Data), len(m.Customs))
	for _, cs := range m.Customs {
		fmt.Printf("  custom %q (%d bytes)\n", cs.Name, len(cs.Data))
	}
	if sites, err := instrument.SitesFromModule(m); err == nil && sites != nil {
		fmt.Printf("instrumented: %d hook sites (mode %d)\n", len(sites.Sites), sites.Mode)
	}

	if *code {
		imported := m.NumImportedFuncs()
		for i := range m.Code {
			idx := uint32(imported + i)
			name := m.FuncNames[idx]
			ft, _ := m.FuncTypeAt(idx)
			fmt.Printf("\nfunc[%d] %s %s\n", idx, name, ft)
			depth := 1
			for pc, in := range m.Code[i].Body {
				switch in.Op {
				case wasm.OpEnd, wasm.OpElse:
					depth--
				}
				fmt.Printf("  %4d %s%s\n", pc, strings.Repeat("  ", max(depth, 0)), in)
				switch in.Op {
				case wasm.OpBlock, wasm.OpLoop, wasm.OpIf, wasm.OpElse:
					depth++
				}
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
