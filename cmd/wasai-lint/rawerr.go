package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// rawerr.go enforces the failure-taxonomy invariant: in the analysis
// pipeline packages, errors must carry a failure class. A bare
// errors.New(...) or a fmt.Errorf(...) without a %w verb constructs an
// error the campaign's retry and reporting layers can only count as
// "unclassified" — it neither assigns a class (failure.Newf / failure.Wrap)
// nor forwards an inner classified error (%w preserves the chain, so
// failure.ClassOf still resolves it).
//
// Sentinel errors and values that are genuinely outside the taxonomy
// (fuzzing signal such as assertion reverts, programmer-error panics) are
// exempted with a `//wasai:rawerr <reason>` directive on the same or the
// preceding line.

// rawerrDirective marks an audited, intentionally class-free error.
const rawerrDirective = "//wasai:rawerr"

// rawerrPackages are the pipeline packages where every error reaches the
// campaign's failure classifier, relative to the module root.
var rawerrPackages = []string{
	"internal/campaign",
	"internal/fuzz",
	"internal/schedule",
	"internal/symbolic",
	"internal/chain",
	"internal/memo",
	"internal/wal",
	"internal/store",
	"internal/serve",
}

// checkRawErrors lints one package directory (non-test files only: test
// helpers construct throwaway errors legitimately).
func checkRawErrors(dir string) ([]string, error) {
	files, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	var diags []string
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		errorsAliases, fmtAliases := errImportAliases(f)
		if len(errorsAliases) == 0 && len(fmtAliases) == 0 {
			continue
		}
		allowed := rawerrLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local variable, not an import
				return true
			}
			pos := fset.Position(sel.Pos())
			if allowed[pos.Line] || allowed[pos.Line-1] {
				return true
			}
			switch {
			case errorsAliases[pkg.Name] && sel.Sel.Name == "New":
				diags = append(diags, fmt.Sprintf(
					"%s: bare %s.New in pipeline package; classify with failure.Newf or annotate with %q",
					pos, pkg.Name, rawerrDirective+" <reason>"))
			case fmtAliases[pkg.Name] && sel.Sel.Name == "Errorf" && !errorfWraps(call):
				diags = append(diags, fmt.Sprintf(
					"%s: %s.Errorf without %%w in pipeline package; classify with failure.Newf, wrap the cause with %%w, or annotate with %q",
					pos, pkg.Name, rawerrDirective+" <reason>"))
			}
			return true
		})
	}
	sort.Strings(diags)
	return diags, nil
}

// errorfWraps reports whether the Errorf call's format string carries a %w
// verb. A non-literal format can't be checked statically and passes (the
// diagnostic would be unactionable).
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return true
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return true
	}
	return strings.Contains(format, "%w")
}

// errImportAliases returns the local names under which the file imports
// "errors" and "fmt".
func errImportAliases(f *ast.File) (errorsAliases, fmtAliases map[string]bool) {
	errorsAliases, fmtAliases = map[string]bool{}, map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "errors":
			if name == "" {
				name = "errors"
			}
			errorsAliases[name] = true
		case "fmt":
			if name == "" {
				name = "fmt"
			}
			fmtAliases[name] = true
		}
	}
	return errorsAliases, fmtAliases
}

// rawerrLines collects the line numbers carrying a //wasai:rawerr marker.
func rawerrLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, rawerrDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
