// Command wasai-lint is this repository's custom lint gate, run by `make
// lint` (and so by `make verify`). It enforces two repo-specific invariants
// that go vet cannot know about:
//
//   - nondeterminism: the deterministic core packages (internal/campaign,
//     internal/chain, internal/fuzz, internal/symbolic, internal/static) promise
//     byte-identical results for identical inputs. Wall-clock reads
//     (time.Now / time.Since / time.Until) and unseeded math/rand calls
//     (anything but rand.New / rand.NewSource) break that promise, so they
//     are forbidden. Reporting-only uses (duration metrics, timeouts) are
//     allowed with an explicit `//wasai:nondet <reason>` directive on the
//     same or the preceding line.
//
//   - oracle parity: every vulnerability class the scanner's detectors
//     reference must have a matching static candidate flag in
//     internal/static AND a verdict implementation in
//     internal/static/absint, so neither static triage layer can silently
//     lag behind a newly added oracle (an un-flagged or un-proven oracle
//     would make triage skips unsound).
//
//   - backend parity: every host-API name constant (API*) declared in
//     internal/chain must be referenced outside its declaring file — the
//     constants name the functions a chain.Backend installs and the oracle
//     sets match on, so an orphaned constant means the pluggable backend
//     surface silently dropped a host function (or kept a stale name).
//
//   - local caches: cross-job caching must go through internal/memo, which
//     owns the determinism contract (canonical keys, Unknown never cached,
//     faulted attempts bypassed). Map-typed (or sync.Map) declarations that
//     advertise cache semantics — the identifier or its enclosing struct
//     matches cache/memo — are forbidden in the pipeline packages unless
//     annotated `//wasai:localcache <reason>` as query- or job-local.
//
//   - raw errors: in the analysis-pipeline packages (internal/campaign,
//     internal/fuzz, internal/symbolic, internal/chain) every constructed
//     error must carry a failure class — failure.Newf / failure.Wrap, or a
//     fmt.Errorf with %w forwarding a classified cause. Bare errors.New and
//     %w-less fmt.Errorf defeat the retry policy and the failure taxonomy;
//     deliberate exceptions carry a `//wasai:rawerr <reason>` directive.
//
// The analyzers are built on the standard library's go/parser and go/ast
// alone. The usual vehicle for custom analyzers is a
// golang.org/x/tools/go/analysis multichecker, but this repository builds
// offline with a zero-dependency module, so the same checks are implemented
// as direct AST passes — the diagnostics keep the analyzer-style
// `path:line:col: message` shape.
//
// Usage:
//
//	go run ./cmd/wasai-lint          # from anywhere inside the module
//
// Exit status 1 when any diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"path/filepath"
)

// corePackages are the determinism-audited packages, relative to the module
// root.
var corePackages = []string{
	"internal/campaign",
	"internal/chain",
	"internal/fuzz",
	"internal/schedule",
	"internal/symbolic",
	"internal/static",
	"internal/memo",
	"internal/wasm/exec",
	"internal/wal",
	"internal/store",
	"internal/serve",
	"cmd/wasai-serve",
}

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasai-lint:", err)
		os.Exit(2)
	}
	var diags []string
	for _, pkg := range corePackages {
		d, err := checkNondeterminism(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasai-lint:", err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}
	for _, pkg := range localcachePackages {
		d, err := checkLocalCaches(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasai-lint:", err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}
	for _, pkg := range rawerrPackages {
		d, err := checkRawErrors(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasai-lint:", err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}
	d, err := checkOracleParity(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasai-lint:", err)
		os.Exit(2)
	}
	diags = append(diags, d...)
	d, err = checkBackendParity(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasai-lint:", err)
		os.Exit(2)
	}
	diags = append(diags, d...)

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
