package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// localcache.go enforces the memoization-layer invariant: cross-job caching
// in the analysis pipeline must go through internal/memo, which owns the
// determinism contract (canonical keys, Unknown never cached, fault-injected
// attempts bypassed). An ad-hoc `cache map[...]...` hidden in a pipeline
// package escapes that contract — its keys are unaudited, its lifetime is
// unbounded, and nothing keeps faulted state out of it. So any map-typed
// (or sync.Map) declaration that looks like a cache — the identifier or its
// enclosing struct matches cache/memo — is flagged unless it carries a
// `//wasai:localcache <reason>` directive asserting it is query- or
// job-local (or is internal/memo's own sanctioned storage).

// localcacheDirective marks an audited, intentionally local cache.
const localcacheDirective = "//wasai:localcache"

// localcachePackages are the pipeline packages under the memoization
// contract, relative to the module root. internal/memo is included: its own
// raw storage self-annotates, so a second unsanctioned cache inside the
// cache package would still be caught.
var localcachePackages = []string{
	"internal/campaign",
	"internal/fuzz",
	"internal/schedule",
	"internal/symbolic",
	"internal/static",
	"internal/memo",
	"internal/wasm/exec",
	"internal/wal",
	"internal/store",
	"internal/serve",
	"cmd/wasai-serve",
}

// localcacheName matches identifiers that advertise cache semantics. `group`
// is included for the incremental solver's shared-instance family groups:
// retained group state is learned-clause reuse, which is under the same
// audit regime as any cache.
var localcacheName = regexp.MustCompile(`(?i)cache|memo|group`)

// checkLocalCaches lints one package directory (non-test files only: test
// doubles build throwaway caches legitimately).
func checkLocalCaches(dir string) ([]string, error) {
	files, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	var diags []string
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		allowed := localcacheLines(fset, f)
		flag := func(pos token.Pos, name string) {
			p := fset.Position(pos)
			if allowed[p.Line] || allowed[p.Line-1] {
				return
			}
			diags = append(diags, fmt.Sprintf(
				"%s: direct map cache %q in pipeline package; route it through internal/memo or annotate with %q if query/job-local",
				p, name, localcacheDirective+" <reason>"))
		}
		flagState := func(pos token.Pos, name string) {
			p := fset.Position(pos)
			if allowed[p.Line] || allowed[p.Line-1] {
				return
			}
			diags = append(diags, fmt.Sprintf(
				"%s: retained solver state %q in pipeline package; learned clauses and branching heuristics persist across queries — annotate with %q stating the reuse scope and why digests stay invariant",
				p, name, localcacheDirective+" <reason>"))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				structMatches := localcacheName.MatchString(n.Name.Name)
				for _, fld := range st.Fields.List {
					if isSolverStateType(fld.Type) {
						// A struct field holding a SAT instance or blaster is
						// retained solver state: learned clauses, VSIDS
						// activity, and phase saving outlive the query that
						// produced them, which is cache semantics whatever
						// the field is called. Same audit regime as a map.
						for _, name := range fld.Names {
							flagState(name.Pos(), n.Name.Name+"."+name.Name)
						}
						continue
					}
					if !isMapLikeType(fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						if structMatches || localcacheName.MatchString(name.Name) {
							flag(name.Pos(), n.Name.Name+"."+name.Name)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if !localcacheName.MatchString(name.Name) {
						continue
					}
					if isMapLikeType(n.Type) || (i < len(n.Values) && isMapValue(n.Values[i])) {
						flag(name.Pos(), name.Name)
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !localcacheName.MatchString(id.Name) {
						continue
					}
					if i < len(n.Rhs) && isMapValue(n.Rhs[i]) {
						flag(id.Pos(), id.Name)
					}
				}
			}
			return true
		})
	}
	sort.Strings(diags)
	return diags, nil
}

// isSolverStateType reports whether the type expression is a SAT instance or
// bit-blaster (optionally behind a pointer) — the shapes retained solver
// state is built on. Name-based like the rest of this file's checks: the
// linter parses without type information, and the two names are this
// repository's only solver-state types.
func isSolverStateType(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.StarExpr:
		return isSolverStateType(e.X)
	case *ast.Ident:
		return e.Name == "SAT" || e.Name == "blaster"
	}
	return false
}

// isMapLikeType reports whether the type expression is a map or sync.Map —
// the storage shapes an ad-hoc cache is built on.
func isMapLikeType(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.MapType:
		return true
	case *ast.StarExpr:
		return isMapLikeType(e.X)
	case *ast.SelectorExpr:
		pkg, ok := e.X.(*ast.Ident)
		return ok && pkg.Name == "sync" && e.Sel.Name == "Map"
	}
	return false
}

// isMapValue reports whether the expression constructs a map: make(map...)
// or a map composite literal.
func isMapValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		fn, ok := e.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" || len(e.Args) == 0 {
			return false
		}
		_, isMap := e.Args[0].(*ast.MapType)
		return isMap
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	case *ast.UnaryExpr:
		return e.Op == token.AND && isMapValue(e.X)
	}
	return false
}

// localcacheLines collects line numbers covered by a //wasai:localcache
// marker. A directive anywhere in a comment group covers the whole group, so
// a multi-line justification ending right above the declaration counts.
func localcacheLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		marked := false
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, localcacheDirective) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		for l := fset.Position(cg.Pos()).Line; l <= fset.Position(cg.End()).Line; l++ {
			lines[l] = true
		}
	}
	return lines
}
