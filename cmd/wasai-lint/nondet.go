package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// nondetDirective marks an audited, intentionally nondeterministic call
// (wall-clock metrics, timeouts). The reason after the directive is for the
// reader; the linter only requires the marker's presence on the call's line
// or the line above.
const nondetDirective = "//wasai:nondet"

// wallClockFuncs are the time package's nondeterminism sources. The rest of
// the package (Duration arithmetic, timers driven by caller-supplied
// deadlines) is deterministic enough to pass.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandFuncs are the only math/rand selectors allowed in core packages:
// constructing an explicitly seeded generator. Everything else — the global
// process-seeded functions (rand.Intn, rand.Shuffle, …) — is forbidden;
// calls on a *rand.Rand value don't select from the package and pass.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true}

// checkNondeterminism lints one package directory (non-test files only:
// tests measure wall clocks legitimately and never feed results back).
func checkNondeterminism(dir string) ([]string, error) {
	files, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	var diags []string
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		timeAliases, randAliases := importAliases(f)
		if len(timeAliases) == 0 && len(randAliases) == 0 {
			continue
		}
		allowed := directiveLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil { // Obj != nil: a local variable, not an import
				return true
			}
			pos := fset.Position(sel.Pos())
			switch {
			case timeAliases[pkg.Name] && wallClockFuncs[sel.Sel.Name]:
				if !allowed[pos.Line] && !allowed[pos.Line-1] {
					diags = append(diags, fmt.Sprintf(
						"%s: wall clock (%s.%s) in deterministic core package; annotate with %q if reporting-only",
						pos, pkg.Name, sel.Sel.Name, nondetDirective+" <reason>"))
				}
			case randAliases[pkg.Name] && !seededRandFuncs[sel.Sel.Name]:
				diags = append(diags, fmt.Sprintf(
					"%s: process-seeded randomness (%s.%s) in deterministic core package; use rand.New(rand.NewSource(seed))",
					pos, pkg.Name, sel.Sel.Name))
			}
			return true
		})
	}
	sort.Strings(diags)
	return diags, nil
}

// importAliases returns the local names under which the file imports "time"
// and "math/rand" (empty maps when it doesn't).
func importAliases(f *ast.File) (timeAliases, randAliases map[string]bool) {
	timeAliases, randAliases = map[string]bool{}, map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeAliases[name] = true
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randAliases[name] = true
		}
	}
	return timeAliases, randAliases
}

// directiveLines collects the line numbers carrying a //wasai:nondet marker.
func directiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, nondetDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// packageFiles lists the non-test .go files of one directory, sorted.
func packageFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out, nil
}
