package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// checkOracleParity enforces the triage soundness precondition across
// packages: every contractgen.Class* constant the scanner's detectors
// reference (the dynamic oracles) must also be referenced by
// internal/static (which computes one candidate flag per oracle class) AND
// by internal/static/absint (which proves one three-valued verdict per
// class). A class detected dynamically but unknown to either static layer
// would get no candidate flag or verdict, and a triage skip could then
// suppress a real finding.
func checkOracleParity(root string) ([]string, error) {
	scannerClasses, err := classRefs(filepath.Join(root, "internal/scanner"))
	if err != nil {
		return nil, err
	}
	staticClasses, err := classRefs(filepath.Join(root, "internal/static"))
	if err != nil {
		return nil, err
	}
	absintClasses, err := classRefs(filepath.Join(root, "internal/static/absint"))
	if err != nil {
		return nil, err
	}
	var diags []string
	for _, class := range sortedClassNames(scannerClasses) {
		if _, ok := staticClasses[class]; !ok {
			diags = append(diags, fmt.Sprintf(
				"%s: scanner oracle references contractgen.%s but internal/static has no matching candidate flag",
				scannerClasses[class], class))
		}
		if _, ok := absintClasses[class]; !ok {
			diags = append(diags, fmt.Sprintf(
				"%s: scanner oracle references contractgen.%s but internal/static/absint has no verdict implementation",
				scannerClasses[class], class))
		}
	}
	return diags, nil
}

// checkBackendParity enforces the pluggable-backend completeness
// invariant on internal/chain: every host-API name constant (API*) must be
// referenced outside its declaring file. The constants name the host
// functions a chain.Backend installs and the oracle sets reason about; a
// constant nothing else references is a host function the backend surface
// silently dropped (or a stale name the oracles can no longer match).
func checkBackendParity(root string) ([]string, error) {
	files, err := packageFiles(filepath.Join(root, "internal/chain"))
	if err != nil {
		return nil, err
	}
	decl := map[string]string{}     // API* const name -> declaring position
	declFile := map[string]string{} // API* const name -> declaring file
	usedIn := map[string]map[string]bool{}
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "API") {
						decl[name.Name] = fset.Position(name.Pos()).String()
						declFile[name.Name] = path
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !strings.HasPrefix(id.Name, "API") {
				return true
			}
			if usedIn[id.Name] == nil {
				usedIn[id.Name] = map[string]bool{}
			}
			usedIn[id.Name][path] = true
			return true
		})
	}
	var diags []string
	for _, name := range sortedClassNames(decl) {
		installed := false
		for path := range usedIn[name] {
			if path != declFile[name] {
				installed = true
			}
		}
		if !installed {
			diags = append(diags, fmt.Sprintf(
				"%s: host-API constant %s is declared but no backend or oracle set references it",
				decl[name], name))
		}
	}
	return diags, nil
}

// classRefs scans a package's non-test files for contractgen.Class*
// selector references (excluding the Classes slice itself) and returns each
// class name with the position of its first use.
func classRefs(dir string) (map[string]string, error) {
	files, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	refs := map[string]string{}
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		aliases := contractgenAliases(f)
		if len(aliases) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Obj != nil || !aliases[pkg.Name] {
				return true
			}
			name := sel.Sel.Name
			if strings.HasPrefix(name, "Class") && name != "Class" && name != "Classes" {
				if _, seen := refs[name]; !seen {
					refs[name] = fset.Position(sel.Pos()).String()
				}
			}
			return true
		})
	}
	return refs, nil
}

// contractgenAliases returns the local names under which the file imports
// repro/internal/contractgen.
func contractgenAliases(f *ast.File) map[string]bool {
	aliases := map[string]bool{}
	for _, imp := range f.Imports {
		if imp.Path.Value != `"repro/internal/contractgen"` {
			continue
		}
		name := "contractgen"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		aliases[name] = true
	}
	return aliases
}

// sortedClassNames orders the diagnostics deterministically.
func sortedClassNames(refs map[string]string) []string {
	out := make([]string, 0, len(refs))
	for name := range refs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
