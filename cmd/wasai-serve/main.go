// Command wasai-serve is the crash-safe analysis daemon: an HTTP/JSON
// service that runs WASAI fuzzing campaigns submitted as jobs, journals
// every accepted job and every completed contract to crash-safe WALs,
// and resumes interrupted work byte-identically after a kill. See
// internal/serve for the API and durability contract.
//
// Usage:
//
//	wasai-serve -addr :8743 -data /var/lib/wasai [-store /var/cache/wasai]
//
// Submit a job:
//
//	curl -d '{"tenant":"t1","contracts":24,"seed":7}' localhost:8743/jobs
//
// SIGTERM/SIGINT drain gracefully: admission stops (readyz goes 503, new
// submissions get 503), running campaigns finish and checkpoint, then the
// process exits. SIGKILL is the crash case the journals exist for — the
// next start re-queues interrupted jobs and resumes their campaigns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8743", "listen address")
		dataDir    = flag.String("data", "", "data directory for the job registry WAL and per-job campaign journals (required)")
		storeDir   = flag.String("store", "", "durable memo-store directory shared across processes and restarts (empty = no disk store)")
		storeMax   = flag.Int64("store-max-bytes", 0, "disk store eviction budget in bytes (0 = default 64 MiB)")
		maxRunning = flag.Int("max-running", 2, "concurrently running jobs across all tenants")
		tenantRun  = flag.Int("tenant-running", 1, "concurrently running jobs per tenant")
		tenantQ    = flag.Int("tenant-queue", 8, "queued jobs per tenant before submissions shed with 429")
		retryAfter = flag.Duration("retry-after", 5*time.Second, "Retry-After hint on 429 responses")
		sync       = flag.Int("journal-sync", 0, "campaign journal fsync policy: every N records (0 = default, 1 = every record, negative = never)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file once serving (for test harnesses)")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "wasai-serve: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		DataDir: *dataDir,
		Limits: serve.Limits{
			MaxRunning:       *maxRunning,
			TenantMaxRunning: *tenantRun,
			TenantMaxQueued:  *tenantQ,
			RetryAfter:       *retryAfter,
		},
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		JournalSync:   *sync,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wasai-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wasai-serve: listen: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "wasai-serve: addr file: %v\n", err)
			os.Exit(1)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Printf("wasai-serve: listening on %s (data %s)\n", ln.Addr(), *dataDir)

	// Scheduler runs until the signal context cancels, then drains.
	runErr := srv.Run(ctx)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "wasai-serve: http: %v\n", err)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "wasai-serve: %v\n", runErr)
		os.Exit(1)
	}
	fmt.Println("wasai-serve: drained")
}
