package wasai

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/abi"
	"repro/internal/contractgen"
	"repro/internal/instrument"
	"repro/internal/symexec"
	"repro/internal/trace"
	wasmpkg "repro/internal/wasm"
)

// instrumentOnce is shared by the benchmarks.
func instrumentOnce(m *wasmpkg.Module) (*instrument.Result, error) {
	return instrument.Instrument(m, instrument.ModeSparse)
}

// TestAnalyzePublicAPI drives the package through its public entry point:
// binary + ABI JSON in, findings out.
func TestAnalyzePublicAPI(t *testing.T) {
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := wasmpkg.Encode(c.Module)
	if err != nil {
		t.Fatal(err)
	}
	abiJSON, err := json.Marshal(c.ABI)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Analyze(bin, abiJSON, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := report.Class("Fake EOS"); !ok || !f.Vulnerable {
		t.Errorf("Fake EOS finding: %+v", report.Findings)
	}
	if !report.Vulnerable() {
		t.Error("Vulnerable() should be true")
	}
	if report.Coverage == 0 || report.Iterations == 0 {
		t.Errorf("campaign stats empty: %+v", report)
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze([]byte("not wasm"), []byte("{}"), DefaultConfig()); err == nil {
		t.Error("want decode error")
	}
	c, _ := contractgen.Generate(contractgen.Spec{Class: contractgen.ClassFakeEOS, Seed: 1})
	bin, _ := wasmpkg.Encode(c.Module)
	if _, err := Analyze(bin, []byte("not json"), DefaultConfig()); err == nil {
		t.Error("want ABI parse error")
	}
}

// TestTraceFileRoundTripReplay: the offline trace file written by a
// campaign can be read back and replayed through Symback — the paper's
// workflow of exporting traces at finalize_trace and analyzing them
// offline.
func TestTraceFileRoundTripReplay(t *testing.T) {
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassFakeNotif, Vulnerable: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.traces")
	cfg := DefaultConfig()
	cfg.Iterations = 24
	cfg.TraceFile = path
	if _, err := AnalyzeModule(c.Module, c.ABI, cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := trace.Read(f)
	if err != nil {
		t.Fatalf("read offline file: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces exported")
	}
	// Replay the first transfer trace offline.
	replayed := false
	for i := range traces {
		if traces[i].Action.String() != "transfer" || len(traces[i].Events) == 0 {
			continue
		}
		params := []symexec.Param{
			{Type: "name"}, {Type: "name"}, {Type: "asset"}, {Type: "string"},
		}
		res, err := symexec.Run(c.Module, &traces[i], params, symexec.Options{})
		if err != nil {
			continue // reverted-in-dispatcher traces have no action call
		}
		if res.Steps == 0 {
			t.Error("offline replay executed no instructions")
		}
		replayed = true
		break
	}
	if !replayed {
		t.Fatal("no offline trace could be replayed")
	}
}

func TestAnalyzeModuleEmptyABI(t *testing.T) {
	// A contract with an ABI declaring no actions still fuzzes through the
	// oracle payloads (transfer-shaped seeds are synthesized).
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassFakeEOS, Vulnerable: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Iterations = 40
	report, err := AnalyzeModule(c.Module, &abi.ABI{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := report.Class("Fake EOS"); !f.Vulnerable {
		t.Error("Fake EOS missed without ABI actions")
	}
}

func TestReportHelpers(t *testing.T) {
	r := &Report{Findings: []Finding{
		{Class: "Fake EOS", Vulnerable: false},
		{Class: "Rollback", Vulnerable: true},
	}}
	if !r.Vulnerable() {
		t.Error("Vulnerable() false with a flagged class")
	}
	if f, ok := r.Class("Rollback"); !ok || !f.Vulnerable {
		t.Errorf("Class lookup: %+v %v", f, ok)
	}
	if _, ok := r.Class("NoSuch"); ok {
		t.Error("found a class that does not exist")
	}
	empty := &Report{}
	if empty.Vulnerable() {
		t.Error("empty report flagged")
	}
}

func TestCustomAPIDetectorsPublic(t *testing.T) {
	c, err := contractgen.Generate(contractgen.Spec{
		Class: contractgen.ClassBlockinfoDep, Vulnerable: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Iterations = 60
	cfg.CustomAPIDetectors = []APIDetector{
		{Name: "TaposUse", APIs: []string{"tapos_block_num", "tapos_block_prefix"}},
	}
	report, err := AnalyzeModule(c.Module, c.ABI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Custom["TaposUse"] {
		t.Error("custom detector should mirror the builtin BlockinfoDep hit")
	}
	if f, _ := report.Class("BlockinfoDep"); !f.Vulnerable {
		t.Error("builtin oracle missed")
	}
}
