// Package wasai is the public API of this repository: a concolic fuzzer
// that uncovers vulnerabilities in WebAssembly (EOSIO) smart contracts,
// reproducing "WASAI: Uncovering Vulnerabilities in Wasm Smart Contracts"
// (ISSTA 2022 / ICDCS 2023 poster).
//
// # Overview
//
// Given a contract's Wasm binary and its ABI, Analyze instruments the
// bytecode with trace hooks, spins up a local EOSIO chain with the
// adversary-oracle agent contracts (a counterfeit EOS token and a
// notification forwarder), and runs a concolic fuzzing campaign: concrete
// executions produce traces, a symbolic backend replays them to build path
// constraints over the transaction inputs, and flipped constraints are
// solved into adaptive seeds that steer execution into unexplored branches.
// Five trace oracles flag the EOSIO vulnerability classes: Fake EOS, Fake
// Notification, Missing Authorization, Blockinfo Dependency, and Rollback.
//
// # Quick start
//
//	report, err := wasai.Analyze(wasmBytes, abiJSON, wasai.DefaultConfig())
//	if err != nil { ... }
//	for _, f := range report.Findings {
//	    fmt.Printf("%-14s vulnerable=%v\n", f.Class, f.Vulnerable)
//	}
//
// See examples/ for runnable end-to-end scenarios and cmd/wasai for the
// command-line interface.
package wasai

import (
	"encoding/json"
	"fmt"

	"os"

	"repro/internal/abi"
	"repro/internal/contractgen"
	"repro/internal/fuzz"
	"repro/internal/memo"
	"repro/internal/scanner"
	"repro/internal/static/absint"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wasm"
)

// Config tunes an analysis campaign.
type Config struct {
	// Iterations is the fuzzing transaction budget — the deterministic
	// analogue of the paper's five-minute wall-clock timeout.
	Iterations int
	// SolverConflicts caps each SMT query's search effort — the analogue of
	// the paper's 3,000 ms per-query limit.
	SolverConflicts int64
	// DisableFeedback turns off the symbolic-execution feedback loop,
	// degrading WASAI into a black-box fuzzer (used by the ablation bench).
	DisableFeedback bool
	// Seed makes the campaign reproducible.
	Seed int64
	// TraceFile, when non-empty, receives every captured target trace in
	// the offline-file format of internal/trace (the paper's §3.3.1
	// "redirect the traces to offline files").
	TraceFile string
	// CustomAPIDetectors registers extension oracles (paper §5): each
	// flags the contract when any of its named host APIs is executed.
	CustomAPIDetectors []APIDetector
	// Memo selects cross-job memoization ("off"/""/default, "on",
	// "shared"; see internal/memo): decoded modules, static reports and
	// canonicalized solver-query verdicts are reused instead of
	// recomputed. "on" scopes the cache to one campaign or batch,
	// "shared" to the whole process. Memoization never changes findings;
	// it only removes duplicated work.
	Memo string
	// StoreDir, when non-empty, backs the memo with the disk-based
	// content-addressed store at that directory (internal/store), shared
	// across processes and restarts: solver verdicts persist and warm
	// runs answer repeated queries from disk. Implies memoization (a
	// private cache when Memo is off). Corrupt or version-mismatched
	// entries degrade to cache misses — they can cost a solver call,
	// never change a finding.
	StoreDir string
	// Incremental enables the prefix-sharing incremental solver for the
	// adaptive-seed flip queries: one shared SAT instance per trace family
	// answers flips as assumption solves, retaining learned clauses, plus
	// a word-level simplification pre-pass. Findings are byte-identical
	// on/off; the flag only reduces solver work.
	Incremental bool
	// FastVM runs contract execution on the decoded-IR direct-threaded
	// engine instead of the tree-walking interpreter. Findings, traces
	// and digests are byte-identical on/off; the flag only raises
	// execution throughput.
	FastVM bool
	// Adaptive enables the coverage-driven power schedule
	// (internal/schedule): payload/action arms and seed-pool entries carry
	// energy scores updated from coverage deltas, and the DBG writer→reader
	// composite arm mutates call sequences. In a batch (AnalyzeBatch /
	// Campaign) it additionally runs the campaign fuel ledger: saturated
	// jobs return unspent iterations at a barrier and the campaign regrants
	// them to still-progressing jobs. Every decision is a pure function of
	// (seed, observed coverage), so adaptive results are identical at any
	// worker count; Adaptive=false is byte-identical to previous releases.
	Adaptive bool
	// SaturationWindow is the adaptive saturation horizon: a campaign whose
	// coverage has not grown for this many iterations stops early and
	// returns its unspent budget. 0 uses the engine default. Ignored unless
	// Adaptive.
	SaturationWindow int
	// Verdicts runs the abstract-interpretation verdict engine
	// (internal/static/absint) before fuzzing. A contract whose five
	// classes are all proven negative is answered immediately with the
	// all-clean report the campaign would have produced (its execution
	// counters are zero); everything else fuzzes as usual. Trace capture
	// and custom detectors disable the shortcut — proofs say nothing
	// about them. Findings are identical on/off; see AnalyzeVerdicts for
	// the verdicts themselves.
	Verdicts bool
}

// APIDetector declares a custom oracle over host-API usage: the detector
// fires when the fuzzed contract executes a call to any of the APIs.
type APIDetector struct {
	// Name labels the detector in Report.Custom.
	Name string
	// APIs are EOSIO host-function names, e.g. "current_time".
	APIs []string
}

// DefaultConfig returns the evaluation configuration of the paper's setup.
func DefaultConfig() Config {
	return Config{Iterations: 240, SolverConflicts: 50_000, Seed: 1}
}

// Finding is one vulnerability-class verdict.
type Finding struct {
	// Class is the vulnerability class name ("Fake EOS", "Fake Notif",
	// "MissAuth", "BlockinfoDep", "Rollback").
	Class string
	// Vulnerable reports whether the campaign's oracle flagged the class.
	Vulnerable bool
}

// Report is the outcome of one analysis campaign.
type Report struct {
	// Findings holds one entry per vulnerability class, in the paper's
	// table order.
	Findings []Finding
	// Coverage is the number of distinct branches explored in the target.
	Coverage int
	// AdaptiveSeeds counts fuzzing inputs produced by constraint solving.
	AdaptiveSeeds int
	// Iterations is the number of transactions executed.
	Iterations int
	// Custom maps each registered APIDetector name to its verdict.
	Custom map[string]bool
}

// Vulnerable reports whether any class was flagged.
func (r *Report) Vulnerable() bool {
	for _, f := range r.Findings {
		if f.Vulnerable {
			return true
		}
	}
	return false
}

// Class returns the finding for the named class.
func (r *Report) Class(name string) (Finding, bool) {
	for _, f := range r.Findings {
		if f.Class == name {
			return f, true
		}
	}
	return Finding{}, false
}

// Analyze runs a WASAI campaign against the contract binary with its ABI
// (in the simplified EOSIO ABI JSON form; see the abi package).
func Analyze(wasmBin []byte, abiJSON []byte, cfg Config) (*Report, error) {
	mod, err := wasm.Decode(wasmBin)
	if err != nil {
		return nil, fmt.Errorf("wasai: decode contract: %w", err)
	}
	if err := wasm.Validate(mod); err != nil {
		return nil, fmt.Errorf("wasai: validate contract: %w", err)
	}
	var contractABI abi.ABI
	if err := json.Unmarshal(abiJSON, &contractABI); err != nil {
		return nil, fmt.Errorf("wasai: parse abi: %w", err)
	}
	return AnalyzeModule(mod, &contractABI, cfg)
}

// AnalyzeModule is Analyze for an already-decoded module and ABI.
func AnalyzeModule(mod *wasm.Module, contractABI *abi.ABI, cfg Config) (*Report, error) {
	var customs []scanner.CustomDetector
	for _, d := range cfg.CustomAPIDetectors {
		customs = append(customs, scanner.NewAPICallDetector(d.Name, mod, d.APIs...))
	}
	mode, err := memo.ParseMode(cfg.Memo)
	if err != nil {
		return nil, fmt.Errorf("wasai: %w", err)
	}
	// Even a single campaign profits from the solver tier: the concolic
	// loop re-solves unflippable branch queries every time coverage grows.
	cache := memo.ForMode(mode)
	if cfg.StoreDir != "" {
		disk, err := store.OpenShared(store.Options{Dir: cfg.StoreDir})
		if err != nil {
			return nil, fmt.Errorf("wasai: memo store: %w", err)
		}
		if mode == memo.ModeShared {
			// Never attach the store to the plain shared cache — that
			// would leak this run's disk tier into every later shared
			// campaign. Each store gets its own process-wide cache.
			cache = memo.SharedWithDisk(disk)
		} else {
			if cache == nil {
				cache = memo.New() // StoreDir implies memoization
			}
			cache.AttachDisk(disk)
		}
	}
	if cfg.Verdicts && len(customs) == 0 && cfg.TraceFile == "" {
		if vr := cache.Verdict(mod, actionNames(contractABI), absint.Analyze); vr.AllNegative() {
			report := &Report{Custom: map[string]bool{}}
			for _, class := range contractgen.Classes {
				report.Findings = append(report.Findings, Finding{Class: class.String()})
			}
			return report, nil
		}
	}
	f, err := fuzz.New(mod, contractABI, fuzz.Config{
		Iterations:       cfg.Iterations,
		SolverConflicts:  cfg.SolverConflicts,
		DisableFeedback:  cfg.DisableFeedback,
		Seed:             cfg.Seed,
		KeepTraces:       cfg.TraceFile != "",
		CustomDetectors:  customs,
		Memo:             cache.SolverMemo(),
		Incremental:      cfg.Incremental,
		FastVM:           cfg.FastVM,
		Adaptive:         cfg.Adaptive,
		SaturationWindow: cfg.SaturationWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("wasai: %w", err)
	}
	res, err := f.Run()
	if err != nil {
		return nil, fmt.Errorf("wasai: campaign: %w", err)
	}
	if cfg.TraceFile != "" {
		out, err := os.Create(cfg.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("wasai: trace file: %w", err)
		}
		defer out.Close()
		if err := trace.Write(out, res.Traces); err != nil {
			return nil, fmt.Errorf("wasai: write traces: %w", err)
		}
	}
	report := &Report{
		Coverage:      res.Coverage,
		AdaptiveSeeds: res.AdaptiveSeeds,
		Iterations:    res.Iterations,
		Custom:        res.Custom,
	}
	for _, class := range contractgen.Classes {
		report.Findings = append(report.Findings, Finding{
			Class:      class.String(),
			Vulnerable: res.Report.Vulnerable[class],
		})
	}
	return report, nil
}
